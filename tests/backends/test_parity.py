"""Cross-backend parity: every backend returns identical integer counts.

This is the determinism contract that makes the backend choice a pure
throughput knob — trajectories are functions of the counts, so equal
counts mean equal traces, digests and tables on every backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import NumpyBackend, available_backend_names, get_backend, use_backend
from repro.backends import numpy_backend as numpy_backend_module
from repro.graphs import gnp
from repro.obs import MetricsRegistry, Observer, use_observer


def _reference_counts(adj, masks):
    """Per-column serial matvec: the slow, obviously-correct kernel."""
    dense = masks.astype(np.int64)
    return np.stack(
        [adj.matrix().dot(np.ascontiguousarray(dense[:, j])) for j in range(masks.shape[1])],
        axis=1,
    )


def _mask_grid(adj, rng):
    """Masks covering both crossover sides and both memory layouts."""
    n = adj.n
    for density in (0.0, 0.02, 0.5, 1.0):
        masks = rng.random((n, 8)) < density
        yield masks  # C-order (n, R)
        yield np.ascontiguousarray(masks.T).T  # trial-major view


@pytest.mark.parametrize("name", available_backend_names())
class TestBackendParity:
    def test_batch_matches_reference(self, name, rng):
        adj = gnp(120, 0.08, seed=5)
        with use_backend(name):
            backend = get_backend()
            for masks in _mask_grid(adj, rng):
                counts = backend.neighbor_counts_batch(adj, masks)
                assert counts.dtype == np.int64
                assert np.array_equal(counts, _reference_counts(adj, masks))

    def test_serial_matches_reference(self, name, rng):
        adj = gnp(90, 0.1, seed=6)
        mask = rng.random(adj.n) < 0.3
        with use_backend(name):
            counts = get_backend().neighbor_counts(adj, mask)
        assert np.array_equal(counts, adj.matrix().dot(mask.astype(np.int64)))

    def test_adjacency_dispatches_through_backend(self, name, rng):
        adj = gnp(60, 0.15, seed=7)
        masks = rng.random((adj.n, 4)) < 0.2
        baseline = adj.neighbor_counts_batch(masks)
        with use_backend(name):
            assert np.array_equal(adj.neighbor_counts_batch(masks), baseline)

    def test_batch_emits_kernel_metrics(self, name, rng):
        adj = gnp(50, 0.2, seed=8)
        masks = rng.random((adj.n, 4)) < 0.2
        registry = MetricsRegistry()
        with use_backend(name), use_observer(Observer(registry, None)):
            adj.neighbor_counts_batch(masks)
        calls = {
            key: value
            for key, value in registry.counters().items()
            if key[0] == "kernel.batch_calls"
        }
        assert sum(calls.values()) == 1
        (label,) = [label for (_, label) in calls]
        assert label.startswith(f"{name}:")
        hist = registry.histogram("kernel.batch_wall_s", label=name)
        assert hist is not None and hist.count == 1


crossover_scenario = st.tuples(
    st.integers(min_value=2, max_value=40),  # n
    st.floats(min_value=0.0, max_value=0.6),  # p
    st.integers(min_value=0, max_value=10_000),  # graph seed
    st.integers(min_value=0, max_value=10_000),  # mask seed
    st.floats(min_value=0.0, max_value=1.0),  # transmit density
    st.integers(min_value=1, max_value=9),  # repetitions
)


class TestCrossoverEquivalence:
    """Scatter and matmul are interchangeable: forcing either side of
    the crossover yields exactly equal counts on arbitrary inputs."""

    @given(crossover_scenario)
    @settings(max_examples=80, deadline=None)
    def test_both_paths_exactly_equal(self, params):
        n, p, gseed, mseed, density, reps = params
        adj = gnp(n, p, seed=gseed)
        masks = np.random.default_rng(mseed).random((n, reps)) < density

        # The crossover picks matmul when work * scatter_cost >= nnz * R,
        # so a huge cost forces matmul and a zero cost forces scatter
        # (whenever there is any work / any structure to compare).
        always_matmul = NumpyBackend()
        always_matmul._scatter_cost = 1e18
        always_scatter = NumpyBackend()
        always_scatter._scatter_cost = 0.0

        via_matmul = always_matmul.neighbor_counts_batch(adj, masks)
        via_scatter = always_scatter.neighbor_counts_batch(adj, masks)
        assert via_matmul.dtype == via_scatter.dtype == np.int64
        assert np.array_equal(via_matmul, via_scatter)
        work = int(adj.degrees[masks.any(axis=1)].sum())
        if work:
            assert always_matmul._last_path == "matmul"
        if adj.indices.size:
            assert always_scatter._last_path == "scatter"


class TestMatmulBuffer:
    def test_dense_buffer_reused_across_rounds(self, rng):
        adj = gnp(80, 0.2, seed=9)
        backend = NumpyBackend()
        backend._scatter_cost = 1e18  # force the matmul path
        masks = rng.random((adj.n, 6)) < 0.5
        assert adj._dense_buf is None
        first = backend.neighbor_counts_batch(adj, masks)
        buf = adj._dense_buf
        assert buf is not None and buf.size >= masks.size
        second = backend.neighbor_counts_batch(adj, masks)
        assert adj._dense_buf is buf  # no per-round reallocation
        assert np.array_equal(first, second)

    def test_conforming_input_skips_the_buffer(self, rng):
        adj = gnp(40, 0.3, seed=10)
        backend = NumpyBackend()
        backend._scatter_cost = 1e18
        dense = np.ascontiguousarray(
            (rng.random((adj.n, 3)) < 0.5).astype(np.int64)
        )
        counts = backend.neighbor_counts_batch(adj, dense)
        assert adj._dense_buf is None
        assert np.array_equal(counts, _reference_counts(adj, dense != 0))


class TestCalibration:
    @pytest.fixture(autouse=True)
    def _isolated_cache_dir(self, tmp_path, monkeypatch):
        # Keep the persisted-calibration cache out of the real home.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))

    def test_calibrate_is_one_shot(self):
        backend = NumpyBackend()
        first = backend.calibrate()
        lo, hi = numpy_backend_module._SCATTER_COST_BOUNDS
        assert lo <= first <= hi
        assert backend.calibrate() == first  # cached, not re-measured
        assert backend.scatter_cost == first

    def test_env_override_skips_measurement(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCATTER_COST", "4")
        backend = NumpyBackend()
        assert backend.calibrate() == 4.0

    def test_env_override_is_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCATTER_COST", "1e9")
        assert NumpyBackend().calibrate() == numpy_backend_module._SCATTER_COST_BOUNDS[1]

    def test_env_override_bad_value_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCATTER_COST", "not-a-float")
        backend = NumpyBackend()
        assert backend.calibrate() == numpy_backend_module._DEFAULT_SCATTER_COST

    def test_measurement_is_persisted_and_reloaded(self, tmp_path, monkeypatch):
        import json

        cache_dir = tmp_path / "repro-cache"
        first = NumpyBackend().calibrate()
        payload = json.loads((cache_dir / "scatter_cost.json").read_text())
        assert payload == {"numpy": np.__version__, "scatter_cost": first}
        # A fresh process (instance) reuses the persisted value without
        # measuring — the probe is rigged to blow up if consulted.
        monkeypatch.setattr(
            NumpyBackend,
            "_measure_scatter_cost",
            lambda self: pytest.fail("re-measured despite a valid cache"),
        )
        assert NumpyBackend().calibrate() == first

    def test_numpy_version_mismatch_invalidates(self, tmp_path, monkeypatch):
        import json

        cache_dir = tmp_path / "repro-cache"
        cache_dir.mkdir(parents=True)
        (cache_dir / "scatter_cost.json").write_text(
            json.dumps({"numpy": "0.0.0", "scatter_cost": 9.0})
        )
        monkeypatch.setattr(
            NumpyBackend, "_measure_scatter_cost", lambda self: 5.0
        )
        assert NumpyBackend().calibrate() == 5.0
        # The stale entry was refreshed under the current version.
        payload = json.loads((cache_dir / "scatter_cost.json").read_text())
        assert payload == {"numpy": np.__version__, "scatter_cost": 5.0}

    @pytest.mark.parametrize(
        "content",
        [
            "{torn",  # crash mid-write
            '["not", "a", "dict"]',
            '{"numpy": null}',  # version mismatch
            '{"numpy": "%s", "scatter_cost": true}',  # bool is not a cost
        ],
    )
    def test_corrupt_cache_entries_remeasure(
        self, tmp_path, monkeypatch, content
    ):
        cache_dir = tmp_path / "repro-cache"
        cache_dir.mkdir(parents=True)
        if "%s" in content:
            content = content % np.__version__
        (cache_dir / "scatter_cost.json").write_text(content)
        monkeypatch.setattr(
            NumpyBackend, "_measure_scatter_cost", lambda self: 6.0
        )
        assert NumpyBackend().calibrate() == 6.0

    def test_persisted_value_is_clamped(self, tmp_path):
        import json

        cache_dir = tmp_path / "repro-cache"
        cache_dir.mkdir(parents=True)
        (cache_dir / "scatter_cost.json").write_text(
            json.dumps({"numpy": np.__version__, "scatter_cost": 1e9})
        )
        _lo, hi = numpy_backend_module._SCATTER_COST_BOUNDS
        assert NumpyBackend().calibrate() == hi

    def test_force_refreshes_the_persisted_entry(self, tmp_path, monkeypatch):
        import json

        cache_dir = tmp_path / "repro-cache"
        cache_dir.mkdir(parents=True)
        (cache_dir / "scatter_cost.json").write_text(
            json.dumps({"numpy": np.__version__, "scatter_cost": 9.0})
        )
        monkeypatch.setattr(
            NumpyBackend, "_measure_scatter_cost", lambda self: 3.0
        )
        assert NumpyBackend().calibrate(force=True) == 3.0
        payload = json.loads((cache_dir / "scatter_cost.json").read_text())
        assert payload["scatter_cost"] == 3.0

    def test_unwritable_cache_dir_is_tolerated(self, tmp_path, monkeypatch):
        # Point the cache "directory" at a file: mkdir fails, the write
        # is skipped, calibration still returns its measurement.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker))
        monkeypatch.setattr(
            NumpyBackend, "_measure_scatter_cost", lambda self: 2.0
        )
        assert NumpyBackend().calibrate() == 2.0

    def test_calibration_does_not_change_counts(self, rng):
        adj = gnp(70, 0.15, seed=11)
        masks = rng.random((adj.n, 5)) < 0.1
        cheap, dear = NumpyBackend(), NumpyBackend()
        cheap._scatter_cost = 1.0
        dear._scatter_cost = 32.0
        assert np.array_equal(
            cheap.neighbor_counts_batch(adj, masks),
            dear.neighbor_counts_batch(adj, masks),
        )
