"""Public API surface tests: imports, exports, version, docstrings."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_key_classes_exported(self):
        for name in (
            "Adjacency",
            "RadioNetwork",
            "Schedule",
            "BroadcastTrace",
            "ElsasserGasieniecScheduler",
            "EGRandomizedProtocol",
            "DecayProtocol",
            "simulate_broadcast",
            "gnp",
            "gnm",
        ):
            assert name in repro.__all__

    def test_quickstart_docstring_works(self):
        # The example in the package docstring must actually run.
        from repro import (
            EGRandomizedProtocol,
            RadioNetwork,
            gnp_connected,
            simulate_broadcast,
        )

        g = gnp_connected(500, 0.05, seed=1)
        net = RadioNetwork(g)
        trace = simulate_broadcast(net, EGRandomizedProtocol(n=500, p=0.05), seed=2)
        assert trace.completed


SUBMODULES = [
    "repro.graphs",
    "repro.graphs.adjacency",
    "repro.graphs.random_graphs",
    "repro.graphs.families",
    "repro.graphs.properties",
    "repro.graphs.bfs",
    "repro.graphs.layers",
    "repro.graphs.covering",
    "repro.graphs.geometric",
    "repro.radio",
    "repro.radio.analysis",
    "repro.gossip",
    "repro.faults",
    "repro.theory.stats",
    "repro.radio.model",
    "repro.radio.trace",
    "repro.radio.schedule",
    "repro.radio.protocol",
    "repro.radio.simulator",
    "repro.broadcast",
    "repro.broadcast.centralized",
    "repro.broadcast.distributed",
    "repro.singleport",
    "repro.lowerbounds",
    "repro.theory",
    "repro.experiments",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", SUBMODULES)
class TestSubmodules:
    def test_imports_cleanly(self, module_name):
        mod = importlib.import_module(module_name)
        assert mod.__doc__, f"{module_name} has no module docstring"

    def test_all_exports_resolve(self, module_name):
        mod = importlib.import_module(module_name)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module_name}.__all__ lists missing {name}"


class TestDocstringCoverage:
    def test_public_callables_documented(self):
        import inspect

        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
            if inspect.isclass(obj):
                for attr, member in vars(obj).items():
                    if attr.startswith("_") or not callable(member):
                        continue
                    # Accept docs inherited from the interface (ABC) the
                    # method implements.
                    doc = member.__doc__ or next(
                        (
                            getattr(base, attr).__doc__
                            for base in obj.__mro__[1:]
                            if hasattr(base, attr)
                        ),
                        None,
                    )
                    if not (doc or "").strip():
                        undocumented.append(f"{name}.{attr}")
        assert not undocumented, f"undocumented public items: {undocumented}"
