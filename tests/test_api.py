"""Public API surface tests: imports, exports, version, docstrings."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_key_classes_exported(self):
        for name in (
            "Adjacency",
            "RadioNetwork",
            "Schedule",
            "BroadcastTrace",
            "ElsasserGasieniecScheduler",
            "EGRandomizedProtocol",
            "DecayProtocol",
            "simulate_broadcast",
            "gnp",
            "gnm",
        ):
            assert name in repro.__all__

    def test_quickstart_docstring_works(self):
        # The example in the package docstring must actually run.
        from repro import (
            EGRandomizedProtocol,
            RadioNetwork,
            gnp_connected,
            simulate_broadcast,
        )

        g = gnp_connected(500, 0.05, seed=1)
        net = RadioNetwork(g)
        trace = simulate_broadcast(net, EGRandomizedProtocol(n=500, p=0.05), seed=2)
        assert trace.completed


SUBMODULES = [
    "repro.graphs",
    "repro.graphs.adjacency",
    "repro.graphs.random_graphs",
    "repro.graphs.families",
    "repro.graphs.properties",
    "repro.graphs.bfs",
    "repro.graphs.layers",
    "repro.graphs.covering",
    "repro.graphs.geometric",
    "repro.radio",
    "repro.radio.analysis",
    "repro.gossip",
    "repro.faults",
    "repro.theory.stats",
    "repro.radio.model",
    "repro.radio.trace",
    "repro.radio.schedule",
    "repro.radio.protocol",
    "repro.radio.simulator",
    "repro.broadcast",
    "repro.broadcast.centralized",
    "repro.broadcast.distributed",
    "repro.singleport",
    "repro.lowerbounds",
    "repro.theory",
    "repro.experiments",
    "repro.cli",
    "repro.api",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.spans",
    "repro.obs.sinks",
    "repro.obs.context",
]


@pytest.mark.parametrize("module_name", SUBMODULES)
class TestSubmodules:
    def test_imports_cleanly(self, module_name):
        mod = importlib.import_module(module_name)
        assert mod.__doc__, f"{module_name} has no module docstring"

    def test_all_exports_resolve(self, module_name):
        mod = importlib.import_module(module_name)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module_name}.__all__ lists missing {name}"


class TestSimulate:
    """simulate() must reproduce each legacy entry point bit for bit."""

    @pytest.fixture(scope="class")
    def net(self):
        from repro import RadioNetwork, gnp_connected

        return RadioNetwork(gnp_connected(40, 0.25, seed=5))

    @pytest.fixture(scope="class")
    def protocol(self):
        from repro import UniformProtocol

        return UniformProtocol(0.25)

    def test_available_dynamics_names(self):
        names = set(repro.available_dynamics())
        assert names == {
            "broadcast",
            "gossip",
            "multimessage",
            "push",
            "push-pull",
            "agents",
        }

    def test_broadcast_matches_legacy(self, net, protocol):
        legacy = repro.simulate_broadcast(net, protocol, seed=11)
        unified = repro.simulate("broadcast", net, protocol=protocol, seed=11)
        assert unified.records == legacy.records
        assert isinstance(unified, repro.SimulationResult)

    def test_backend_kwarg_is_result_invariant(self, net, protocol):
        default = repro.simulate("broadcast", net, protocol=protocol, seed=11)
        from repro.backends import available_backend_names

        for name in available_backend_names():
            picked = repro.simulate(
                "broadcast", net, protocol=protocol, seed=11, backend=name
            )
            assert picked.records == default.records

    def test_backend_kwarg_scope_is_the_call(self, net, protocol):
        from repro.backends import base as backends_base

        before = backends_base._STATE.active
        repro.simulate("broadcast", net, protocol=protocol, seed=11, backend="numpy")
        assert backends_base._STATE.active is before  # not left installed

    def test_backend_kwarg_unknown_name(self, net, protocol):
        with pytest.raises(repro.InvalidParameterError, match="unknown kernel backend"):
            repro.simulate(
                "broadcast", net, protocol=protocol, seed=11, backend="nope"
            )

    def test_gossip_matches_legacy(self, net, protocol):
        from repro.gossip import simulate_gossip

        legacy = simulate_gossip(net, protocol, seed=11)
        unified = repro.simulate("gossip", net, protocol=protocol, seed=11)
        assert unified.records == legacy.records

    def test_multimessage_matches_legacy(self, net, protocol):
        from repro.gossip import simulate_multimessage

        legacy = simulate_multimessage(net, protocol, [0, 1, 2], seed=11)
        unified = repro.simulate(
            "multimessage", net, protocol=protocol, sources=[0, 1, 2], seed=11
        )
        assert unified.records == legacy.records

    def test_push_variants_match_legacy(self, net):
        from repro.singleport import push_broadcast, push_pull_broadcast

        for name, legacy_fn in (
            ("push", push_broadcast),
            ("push-pull", push_pull_broadcast),
        ):
            legacy = legacy_fn(net.adj, seed=11)
            unified = repro.simulate(name, net.adj, seed=11)
            assert unified.records == legacy.records, name

    def test_agents_matches_legacy(self, net):
        from repro.singleport import agent_broadcast

        legacy = agent_broadcast(net.adj, 8, seed=11)
        unified = repro.simulate("agents", net.adj, num_agents=8, seed=11)
        assert unified.records == legacy.records

    def test_graph_params_mapping(self, protocol):
        # {"n", "p", "seed"} samples the same connected G(n, p) the
        # explicit construction does.
        from repro import RadioNetwork, gnp_connected

        explicit = repro.simulate(
            "broadcast",
            RadioNetwork(gnp_connected(40, 0.25, seed=5)),
            protocol=protocol,
            seed=11,
        )
        implicit = repro.simulate(
            "broadcast",
            {"n": 40, "p": 0.25, "seed": 5},
            protocol=protocol,
            seed=11,
        )
        assert implicit.records == explicit.records

    def test_unknown_process_rejected(self, net):
        from repro import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="registered"):
            repro.simulate("flooding", net)

    def test_bad_graph_params_rejected(self, protocol):
        from repro import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="missing"):
            repro.simulate("broadcast", {"n": 10}, protocol=protocol)
        with pytest.raises(InvalidParameterError, match="unknown graph"):
            repro.simulate(
                "broadcast", {"n": 10, "p": 0.5, "m": 3}, protocol=protocol
            )

    def test_instance_process_rejects_extra_kwargs(self, net, protocol):
        from repro import InvalidParameterError
        from repro.radio.dynamics import BroadcastDynamics

        dynamics = BroadcastDynamics.build(net, protocol=protocol)
        with pytest.raises(InvalidParameterError, match="already-constructed"):
            repro.simulate(dynamics, net, protocol=protocol)

    def test_explicit_observer_sees_the_run(self, net, protocol):
        from repro import MemoryTraceSink, Observer

        obs = Observer(sink=MemoryTraceSink())
        trace = repro.simulate(
            "broadcast", net, protocol=protocol, seed=11, obs=obs
        )
        kinds = [event["kind"] for event in obs.sink.events]
        assert kinds[0] == "run-start" and kinds[-1] == "run-end"
        assert kinds.count("round") == trace.num_rounds


class TestDocstringCoverage:
    def test_public_callables_documented(self):
        import inspect

        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
            if inspect.isclass(obj):
                for attr, member in vars(obj).items():
                    if attr.startswith("_") or not callable(member):
                        continue
                    # Accept docs inherited from the interface (ABC) the
                    # method implements.
                    doc = member.__doc__ or next(
                        (
                            getattr(base, attr).__doc__
                            for base in obj.__mro__[1:]
                            if hasattr(base, attr)
                        ),
                        None,
                    )
                    if not (doc or "").strip():
                        undocumented.append(f"{name}.{attr}")
        assert not undocumented, f"undocumented public items: {undocumented}"
