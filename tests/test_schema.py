"""Round-trip tests for the pinned result wire schema (repro.schema).

Every result type must survive ``to_dict`` → JSON → ``from_dict`` with
its semantics intact, and the generic :func:`repro.schema.result_from_dict`
dispatcher must route each document to the right type — this is the
contract shared by ``repro run --json``, the job server's responses and
the content-addressed result cache.
"""

import json
import math

import numpy as np
import pytest

from repro import (
    DecayProtocol,
    RESULT_SCHEMA_VERSION,
    RadioNetwork,
    gnp_connected,
    result_from_dict,
    simulate,
    simulate_broadcast,
)
from repro.errors import ReproError
from repro.gossip import run_gossip_batch, simulate_gossip
from repro.radio.engine import run_broadcast_batch
from repro.schema import canonical_json, decode_curve, encode_curve


@pytest.fixture
def net():
    return RadioNetwork(gnp_connected(40, 0.25, seed=3))


@pytest.fixture
def protocol():
    return DecayProtocol(40)


def wire_round_trip(result):
    """to_dict → JSON text → from_dict → to_dict, asserting byte equality."""
    doc = result.to_dict()
    text = json.dumps(doc)
    again = result_from_dict(json.loads(text))
    assert canonical_json(again.to_dict()) == canonical_json(doc)
    return again


class TestBroadcastTraceRoundTrip:
    def test_round_trip_equality(self, net, protocol):
        trace = simulate_broadcast(net, protocol, seed=5)
        again = wire_round_trip(trace)
        assert again.completed == trace.completed
        assert again.num_rounds == trace.num_rounds
        assert again.total_transmissions == trace.total_transmissions
        np.testing.assert_array_equal(
            again.informed_curve(), trace.informed_curve()
        )

    def test_schema_version_pinned(self, net, protocol):
        doc = simulate_broadcast(net, protocol, seed=5).to_dict()
        assert doc["schema_version"] == RESULT_SCHEMA_VERSION
        assert doc["kind"] == "broadcast-trace"


class TestGossipTraceRoundTrip:
    def test_round_trip_equality(self, net, protocol):
        trace = simulate_gossip(net, protocol, seed=5)
        again = wire_round_trip(trace)
        assert again.completed == trace.completed
        assert again.num_rounds == trace.num_rounds
        assert again.tokens == trace.tokens
        np.testing.assert_array_equal(
            again.knowledge_counts, trace.knowledge_counts
        )


class TestBatchResultsRoundTrip:
    def test_broadcast_batch(self, net, protocol):
        batch = run_broadcast_batch(
            net, protocol, repetitions=5, seed=4, with_stats=True
        )
        again = wire_round_trip(batch)
        assert again.num_completed == batch.num_completed
        np.testing.assert_array_equal(
            again.completion_rounds, batch.completion_rounds
        )

    def test_gossip_batch(self, net, protocol):
        batch = run_gossip_batch(net, protocol, repetitions=5, seed=4)
        again = wire_round_trip(batch)
        assert again.num_completed == batch.num_completed
        np.testing.assert_array_equal(
            again.completion_rounds, batch.completion_rounds
        )

    def test_incomplete_runs_carry_inf_through_json(self, net, protocol):
        # Strict JSON has no Infinity: budget misses encode as null and
        # decode back to inf.
        batch = run_broadcast_batch(
            net, protocol, repetitions=5, seed=4, max_rounds=2
        )
        assert np.isinf(batch.completion_rounds).any()
        again = wire_round_trip(batch)
        np.testing.assert_array_equal(
            np.isinf(again.completion_rounds), np.isinf(batch.completion_rounds)
        )


class TestCurveCodec:
    def test_encode_decode(self):
        values = [1.0, math.inf, 3.5]
        encoded = encode_curve(values)
        assert encoded == [1.0, None, 3.5]
        decoded = decode_curve(encoded)
        assert decoded.dtype == np.float64
        np.testing.assert_array_equal(decoded, np.array([1.0, math.inf, 3.5]))


class TestDispatcher:
    def test_simulate_results_dispatch(self):
        graph = {"n": 30, "p": 0.3, "seed": 1}
        result = simulate(
            "broadcast", graph, protocol=DecayProtocol(30), seed=2
        )
        again = result_from_dict(result.to_dict())
        assert type(again) is type(result)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="kind"):
            result_from_dict(
                {"schema_version": RESULT_SCHEMA_VERSION, "kind": "nope"}
            )

    def test_wrong_version_rejected(self, net, protocol):
        doc = simulate_broadcast(net, protocol, seed=5).to_dict()
        doc["schema_version"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ReproError, match="schema_version"):
            result_from_dict(doc)
