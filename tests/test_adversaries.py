"""Unit tests for the adversarial fault models and the FaultPlan bundle."""

import numpy as np
import pytest

from repro.broadcast.distributed import UniformProtocol
from repro.errors import InvalidParameterError
from repro.faults import (
    AdversarialJammer,
    ChurnSchedule,
    CrashSchedule,
    FaultPlan,
    LossyLinkModel,
    SpuriousNoiseModel,
    simulate_broadcast_faulty,
)
from repro.radio import RadioNetwork


def flood():
    return UniformProtocol(1.0)


class TestAdversarialJammer:
    def test_random_budget_and_exclusion(self, gnp_small, rng):
        jam = AdversarialJammer(gnp_small, 5, strategy="random", exclude=[0, 3])
        for t in range(1, 20):
            mask = jam.jam_mask(t, rng)
            assert mask.sum() == 5
            assert not mask[0] and not mask[3]

    def test_degree_strategy_targets_hub(self, star10, rng):
        jam = AdversarialJammer(star10, 1, strategy="degree")
        mask = jam.jam_mask(1, rng)
        assert list(np.flatnonzero(mask)) == [0]
        # The fixed set does not change between rounds.
        assert np.array_equal(mask, jam.jam_mask(7, rng))

    def test_duty_cycle_thins_the_fixed_set(self, star10):
        jam = AdversarialJammer(star10, 9, strategy="degree",
                                active_probability=0.5, exclude=[0])
        rng = np.random.default_rng(3)
        counts = [jam.jam_mask(t, rng).sum() for t in range(1, 200)]
        assert 0.35 * 9 < np.mean(counts) < 0.65 * 9

    def test_budget_clamps_to_eligible(self, star10):
        jam = AdversarialJammer(star10, 100, exclude=[0])
        assert jam.k == 9

    def test_is_null(self, star10):
        assert AdversarialJammer(star10, 0).is_null
        assert AdversarialJammer(star10, 3, active_probability=0.0).is_null
        assert not AdversarialJammer(star10, 3).is_null

    def test_validation(self, star10):
        with pytest.raises(InvalidParameterError):
            AdversarialJammer(star10, -1)
        with pytest.raises(InvalidParameterError):
            AdversarialJammer(star10, 1, strategy="psychic")
        with pytest.raises(InvalidParameterError):
            AdversarialJammer(star10, 1, active_probability=1.5)

    def test_always_on_hub_jammer_kills_star_broadcast(self, star10):
        # An always-jamming hub never listens, so a leaf source can never
        # deliver to it — and nothing reaches the other leaves through it.
        jam = AdversarialJammer(star10, 1, strategy="degree")
        trace = simulate_broadcast_faulty(
            RadioNetwork(star10), flood(), 1,
            plan=FaultPlan(jammer=jam), seed=0, max_rounds=30,
            raise_on_incomplete=False,
        )
        assert not trace.completed
        assert trace.num_informed == 1

    def test_random_jammers_only_delay(self, gnp_small):
        # A small roaming jammer leaves enough clean slots for the
        # broadcast to finish, just later on average.
        net = RadioNetwork(gnp_small)

        def mean_time(plan):
            times = []
            for s in range(5):
                tr = simulate_broadcast_faulty(
                    net, UniformProtocol(0.1), plan=plan, seed=s,
                    max_rounds=4000,
                )
                times.append(tr.completion_round)
            return np.mean(times)

        clean = mean_time(FaultPlan())
        jammed = mean_time(
            FaultPlan(jammer=AdversarialJammer(gnp_small, 10, exclude=[0]))
        )
        assert jammed > clean


class TestChurnSchedule:
    def test_alive_at_semantics(self):
        cs = ChurnSchedule(4, [(1, 2, 3), (2, 5, -1)])
        assert list(cs.alive_at(1)) == [True, True, True, True]
        assert list(cs.alive_at(2)) == [True, False, True, True]
        assert list(cs.alive_at(3)) == [True, False, True, True]
        assert list(cs.alive_at(4)) == [True, True, True, True]
        assert list(cs.alive_at(6)) == [True, True, False, True]

    def test_rejoin_and_forget(self):
        cs = ChurnSchedule(4, [(1, 2, 3)])
        assert list(cs.rejoining_at(4)) == [1]
        assert list(cs.forget_at(4)) == [1]
        assert cs.forget_at(3).size == 0
        retain = ChurnSchedule(4, [(1, 2, 3)], forget_on_recovery=False)
        assert retain.forget_at(4).size == 0

    def test_eventually_alive_excludes_never_recovering(self):
        cs = ChurnSchedule(4, [(1, 2, 3), (2, 5, -1)])
        assert list(cs.eventually_alive()) == [True, True, False, True]

    def test_overlap_rejected(self):
        with pytest.raises(InvalidParameterError, match="overlap"):
            ChurnSchedule(4, [(1, 2, 5), (1, 4, 6)])
        with pytest.raises(InvalidParameterError, match="overlap"):
            ChurnSchedule(4, [(1, 2, -1), (1, 10, 12)])

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ChurnSchedule(4, [(9, 1, 2)])
        with pytest.raises(InvalidParameterError):
            ChurnSchedule(4, [(1, 0, 2)])
        with pytest.raises(InvalidParameterError):
            ChurnSchedule(4, [(1, 5, 2)])

    def test_random_respects_protect(self, rng):
        cs = ChurnSchedule.random(50, 1.0, 20, seed=rng, protect=[0, 7])
        churned = set(cs.intervals[:, 0].tolist())
        assert 0 not in churned and 7 not in churned
        assert cs.num_churning() == 48

    def test_forgetful_rejoiner_is_reinformed(self, star10):
        # Leaf 5 reboots during the flood and loses its state; the hub
        # (still transmitting) re-informs it the round it comes back up.
        churn = ChurnSchedule(10, [(5, 1, 3)])
        trace = simulate_broadcast_faulty(
            RadioNetwork(star10), flood(), 0,
            plan=FaultPlan(churn=churn), seed=0, max_rounds=30,
        )
        assert trace.completed
        assert trace.informed_round[5] == 4
        assert trace.completion_round == 4

    def test_retaining_rejoiner_keeps_state(self, star10):
        churn = ChurnSchedule(10, [(5, 2, 4)], forget_on_recovery=False)
        trace = simulate_broadcast_faulty(
            RadioNetwork(star10), flood(), 0,
            plan=FaultPlan(churn=churn), seed=0, max_rounds=30,
        )
        assert trace.completed
        # Informed in round 1, before the interval started; nothing lost.
        assert trace.informed_round[5] == 1
        assert trace.completion_round == 1


class TestSpuriousNoiseModel:
    def test_q_one_fires_every_round(self, rng):
        noise = SpuriousNoiseModel(6, [1, 4], 1.0)
        mask = noise.noise_mask(1, rng)
        assert list(np.flatnonzero(mask)) == [1, 4]

    def test_q_thins(self):
        noise = SpuriousNoiseModel(100, np.arange(100), 0.3)
        rng = np.random.default_rng(5)
        counts = [noise.noise_mask(t, rng).sum() for t in range(1, 100)]
        assert 20 < np.mean(counts) < 40

    def test_bool_mask_constructor(self):
        mask = np.zeros(5, dtype=bool)
        mask[2] = True
        noise = SpuriousNoiseModel(5, mask, 0.5)
        assert noise.num_byzantine() == 1

    def test_is_null(self):
        assert SpuriousNoiseModel(5, [], 0.5).is_null
        assert SpuriousNoiseModel(5, [1], 0.0).is_null
        assert not SpuriousNoiseModel(5, [1], 0.5).is_null

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SpuriousNoiseModel(5, [1], 1.5)
        with pytest.raises(InvalidParameterError):
            SpuriousNoiseModel(5, [9], 0.5)
        with pytest.raises(InvalidParameterError):
            SpuriousNoiseModel(5, np.zeros(4, dtype=bool), 0.5)

    def test_random_respects_protect(self, rng):
        noise = SpuriousNoiseModel.random(50, 1.0, 0.5, seed=rng, protect=[0])
        assert not noise.byzantine[0]
        assert noise.num_byzantine() == 49

    def test_byzantine_source_corrupts_its_own_payload(self, star10):
        # The hub is Byzantine with q = 1: every transmission it makes is
        # garbage, so the message never leaves it.
        noise = SpuriousNoiseModel(10, [0], 1.0)
        trace = simulate_broadcast_faulty(
            RadioNetwork(star10), flood(), 0,
            plan=FaultPlan(noise=noise), seed=0, max_rounds=30,
            raise_on_incomplete=False,
        )
        assert not trace.completed
        assert trace.num_informed == 1


class TestFaultPlan:
    def test_null_plan(self):
        assert FaultPlan().is_null

    def test_each_component_activates(self, star10):
        crash = np.full(10, -1, dtype=np.int64)
        crash[3] = 2
        assert not FaultPlan(crashes=CrashSchedule(crash)).is_null
        assert not FaultPlan(churn=ChurnSchedule(10, [(1, 2, 3)])).is_null
        assert not FaultPlan(jammer=AdversarialJammer(star10, 1)).is_null
        assert not FaultPlan(noise=SpuriousNoiseModel(10, [1], 0.5)).is_null
        # A perfect link model still exercises the fault path (that is
        # exactly what the trace-parity test relies on).
        assert not FaultPlan(links=LossyLinkModel(star10, 1.0)).is_null

    def test_null_components_stay_null(self, star10):
        plan = FaultPlan(
            crashes=CrashSchedule.none(10),
            churn=ChurnSchedule.none(10),
            jammer=AdversarialJammer(star10, 0),
            noise=SpuriousNoiseModel(10, [], 0.5),
        )
        assert plan.is_null

    def test_validate_size_mismatch(self, star10):
        plan = FaultPlan(jammer=AdversarialJammer(star10, 1))
        with pytest.raises(InvalidParameterError, match="covers"):
            plan.validate(12)

    def test_target_intersects_crashes_and_churn(self):
        crash = np.full(4, -1, dtype=np.int64)
        crash[1] = 3
        plan = FaultPlan(
            crashes=CrashSchedule(crash),
            churn=ChurnSchedule(4, [(2, 5, -1)]),
        )
        assert list(plan.target(4)) == [True, False, False, True]

    def test_garbage_mask_draws_nothing_when_inactive(self, star10):
        plan = FaultPlan(crashes=CrashSchedule.none(10))
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        assert plan.garbage_mask(1, rng) is None
        assert rng.bit_generator.state == before

    def test_garbage_mask_unions_jammer_and_noise(self, star10):
        plan = FaultPlan(
            # The hub is excluded from jamming but Byzantine, so the union
            # must hold the two leaf jammers plus the hub.
            jammer=AdversarialJammer(star10, 2, strategy="degree", exclude=[0]),
            noise=SpuriousNoiseModel(10, [0], 1.0),
        )
        mask = plan.garbage_mask(1, np.random.default_rng(0))
        assert mask[0]
        assert mask.sum() == 3

    def test_plan_and_components_are_exclusive(self, star10):
        with pytest.raises(InvalidParameterError, match="not both"):
            simulate_broadcast_faulty(
                RadioNetwork(star10), flood(), 0,
                plan=FaultPlan(), crashes=CrashSchedule.none(10),
            )
