"""Property-based tests for schedules, simulator and schedulers (hypothesis)."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.broadcast.centralized import GreedyCoverScheduler
from repro.broadcast.distributed import UniformProtocol
from repro.errors import BroadcastIncompleteError
from repro.graphs import gnp
from repro.graphs.bfs import bfs_distances
from repro.radio import (
    RadioNetwork,
    Schedule,
    execute_schedule,
    simulate_broadcast,
    verify_schedule,
)

connected_gnp = st.tuples(
    st.integers(min_value=3, max_value=35),
    st.floats(min_value=0.25, max_value=0.9),
    st.integers(min_value=0, max_value=10_000),
)


def connected_graph(params):
    n, p, seed = params
    g = gnp(n, p, seed=seed)
    return g, bool(np.all(bfs_distances(g, 0) >= 0))


class TestExecutorInvariants:
    @given(
        connected_gnp,
        st.lists(st.lists(st.integers(0, 34), max_size=6), max_size=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_informed_set_monotone(self, params, raw_rounds):
        g, _ = connected_graph(params)
        n = g.n
        rounds = [[v % n for v in r] for r in raw_rounds]
        schedule = Schedule(n, rounds)
        trace = execute_schedule(
            RadioNetwork(g), schedule, 0, mode="permissive", stop_when_complete=False
        )
        curve = trace.informed_curve()
        assert np.all(np.diff(curve) >= 0)
        assert curve[0] == 1

    @given(
        connected_gnp,
        st.lists(st.lists(st.integers(0, 34), max_size=6), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_new_counts_sum_to_final_informed(self, params, raw_rounds):
        # Consistency: in any mode, total new over rounds equals final
        # informed count minus one (the source).
        g, _ = connected_graph(params)
        n = g.n
        rounds = [[v % n for v in r] for r in raw_rounds]
        schedule = Schedule(n, rounds)
        for mode in ("filter", "permissive"):
            trace = execute_schedule(
                RadioNetwork(g), schedule, 0, mode=mode, stop_when_complete=False
            )
            assert sum(r.num_new for r in trace.records) == trace.num_informed - 1


class TestSchedulerUniversality:
    @given(connected_gnp)
    @settings(max_examples=50, deadline=None)
    def test_greedy_scheduler_completes_on_any_connected_graph(self, params):
        g, connected = connected_graph(params)
        assume(connected)
        schedule = GreedyCoverScheduler(seed=0).build(g, 0)
        assert verify_schedule(RadioNetwork(g), schedule, 0)

    @given(connected_gnp)
    @settings(max_examples=30, deadline=None)
    def test_eg_scheduler_completes_on_any_connected_graph(self, params):
        from repro.broadcast.centralized import ElsasserGasieniecScheduler

        g, connected = connected_graph(params)
        assume(connected)
        schedule = ElsasserGasieniecScheduler(seed=0).build(g, 0)
        assert verify_schedule(RadioNetwork(g), schedule, 0)


class TestSimulatorInvariants:
    @given(connected_gnp, st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=50, deadline=None)
    def test_uniform_protocol_trace_consistency(self, params, q):
        g, connected = connected_graph(params)
        assume(connected)
        try:
            trace = simulate_broadcast(
                RadioNetwork(g), UniformProtocol(q), 0, seed=1, max_rounds=4000
            )
        except BroadcastIncompleteError:
            assume(False)
        assert trace.completed
        assert trace.informed_round[0] == 0
        rounds = trace.informed_round
        assert rounds.min() >= 0
        assert rounds.max() == trace.completion_round
        # Each informed_round <= recorded rounds.
        assert rounds.max() <= trace.num_rounds
