"""Property-based tests for the graph substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Adjacency, gnm, gnp
from repro.graphs.bfs import bfs_distances, bfs_layers_list, bfs_tree
from repro.graphs.random_graphs import pair_count

# Strategy: arbitrary edge lists over small node ranges.
edge_lists = st.integers(min_value=2, max_value=25).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=60,
        ),
    )
)

gnp_params = st.tuples(
    st.integers(min_value=2, max_value=40),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=10_000),
)


class TestAdjacencyInvariants:
    @given(edge_lists)
    @settings(max_examples=80, deadline=None)
    def test_from_edges_structural_invariants(self, data):
        n, edges = data
        g = Adjacency.from_edges(n, edges)
        g.validate()  # symmetry, sortedness, no loops, no duplicates
        # Degree sum == 2m (handshake lemma).
        assert int(g.degrees.sum()) == 2 * g.num_edges
        # Edge list round-trips.
        g2 = Adjacency.from_edges(n, g.edges())
        assert g == g2

    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_dense_roundtrip(self, data):
        n, edges = data
        g = Adjacency.from_edges(n, edges)
        assert Adjacency.from_dense(g.to_dense()) == g

    @given(edge_lists, st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_neighbor_counts_matches_bruteforce(self, data, seed):
        n, edges = data
        g = Adjacency.from_edges(n, edges)
        mask = np.random.default_rng(seed).random(n) < 0.5
        counts = g.neighbor_counts(mask)
        for v in range(n):
            assert counts[v] == int(np.sum(mask[g.neighbors(v)]))

    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_subgraph_edges_subset(self, data):
        n, edges = data
        g = Adjacency.from_edges(n, edges)
        pick = np.arange(0, n, 2)
        sub, nodes = g.subgraph(pick)
        for u, v in sub.edges():
            assert g.has_edge(int(nodes[u]), int(nodes[v]))


class TestGeneratorInvariants:
    @given(gnp_params)
    @settings(max_examples=60, deadline=None)
    def test_gnp_valid_structure(self, params):
        n, p, seed = params
        g = gnp(n, p, seed=seed)
        g.validate()
        assert g.n == n
        assert 0 <= g.num_edges <= pair_count(n)

    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=10_000),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_gnm_exact_count(self, n, seed, data):
        m = data.draw(st.integers(0, pair_count(n)))
        g = gnm(n, m, seed=seed)
        g.validate()
        assert g.num_edges == m


class TestBfsInvariants:
    @given(gnp_params)
    @settings(max_examples=60, deadline=None)
    def test_distance_lipschitz_across_edges(self, params):
        n, p, seed = params
        g = gnp(n, p, seed=seed)
        dist = bfs_distances(g, 0)
        for u, v in g.edges():
            du, dv = dist[u], dist[v]
            if du >= 0 and dv >= 0:
                assert abs(du - dv) <= 1
            else:
                # Reachability is a component property: both or neither.
                assert du == dv == -1

    @given(gnp_params)
    @settings(max_examples=40, deadline=None)
    def test_layers_partition_reachable_set(self, params):
        n, p, seed = params
        g = gnp(n, p, seed=seed)
        dist = bfs_distances(g, 0)
        layers = bfs_layers_list(g, 0)
        reached = np.flatnonzero(dist >= 0)
        assert np.array_equal(np.sort(np.concatenate(layers)), reached)

    @given(gnp_params)
    @settings(max_examples=40, deadline=None)
    def test_tree_parent_distance_invariant(self, params):
        n, p, seed = params
        g = gnp(n, p, seed=seed)
        dist, parent = bfs_tree(g, 0)
        for v in range(n):
            if parent[v] >= 0:
                assert dist[v] == dist[parent[v]] + 1
                assert g.has_edge(int(parent[v]), v)
