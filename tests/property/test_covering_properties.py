"""Property-based tests for covers and matchings (hypothesis).

Proposition 2 is a universally quantified statement ("*every* minimal
covering yields an independent matching of the same size") — exactly the
shape property-based testing handles: we verify the constructive proof on
arbitrary random bipartite instances.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import gnp
from repro.graphs.covering import (
    cover_counts,
    greedy_independent_cover,
    greedy_independent_matching,
    independent_matching_from_covering,
    is_covering,
    is_independent_matching,
    is_minimal_covering,
    minimal_covering,
)

instance = st.tuples(
    st.integers(min_value=4, max_value=40),  # n
    st.floats(min_value=0.1, max_value=0.9),  # p
    st.integers(min_value=0, max_value=10_000),  # seed
    st.floats(min_value=0.2, max_value=0.8),  # split point
)


def make_instance(params):
    n, p, seed, split = params
    g = gnp(n, p, seed=seed)
    cut = max(1, min(n - 1, int(split * n)))
    X = np.arange(0, cut, dtype=np.int64)
    Y = np.arange(cut, n, dtype=np.int64)
    return g, X, Y


class TestMinimalCovering:
    @given(instance)
    @settings(max_examples=100, deadline=None)
    def test_output_is_minimal_covering_or_none_exists(self, params):
        g, X, Y = make_instance(params)
        try:
            cover = minimal_covering(g, X, Y)
        except GraphError:
            # Legitimately no covering: some y has no neighbour in X.
            counts = cover_counts(g, X, Y) if X.size else np.zeros(Y.size)
            assert X.size == 0 or np.any(counts == 0)
            return
        assert is_covering(g, cover, Y)
        assert is_minimal_covering(g, cover, Y)
        assert np.all(np.isin(cover, X))


class TestProposition2:
    @given(instance)
    @settings(max_examples=100, deadline=None)
    def test_minimal_cover_yields_full_matching(self, params):
        g, X, Y = make_instance(params)
        try:
            cover = minimal_covering(g, X, Y)
        except GraphError:
            assume(False)  # no covering on this instance
        pairs = independent_matching_from_covering(g, cover, Y)
        # Proposition 2: matching size equals cover size, and it is
        # genuinely independent.
        assert pairs.shape[0] == cover.size
        assert is_independent_matching(g, pairs)
        assert np.all(np.isin(pairs[:, 0], cover))
        assert np.all(np.isin(pairs[:, 1], Y))


class TestGreedyIndependentCover:
    @given(instance)
    @settings(max_examples=100, deadline=None)
    def test_informed_hear_exactly_one(self, params):
        g, X, Y = make_instance(params)
        cover, informed = greedy_independent_cover(g, X, Y, seed=0)
        assert np.all(np.isin(cover, X))
        assert np.all(np.isin(informed, Y))
        if informed.size:
            assert np.all(cover_counts(g, cover, informed) == 1)

    @given(instance)
    @settings(max_examples=60, deadline=None)
    def test_progress_when_cover_possible(self, params):
        g, X, Y = make_instance(params)
        reachable = (
            np.any(cover_counts(g, X, Y) > 0) if X.size and Y.size else False
        )
        _, informed = greedy_independent_cover(g, X, Y, seed=0)
        if reachable:
            assert informed.size >= 1  # guaranteed progress
        else:
            assert informed.size == 0


class TestGreedyIndependentMatching:
    @given(instance)
    @settings(max_examples=100, deadline=None)
    def test_always_independent(self, params):
        g, X, Y = make_instance(params)
        pairs = greedy_independent_matching(g, X, Y, seed=0)
        assert is_independent_matching(g, pairs)

    @given(instance)
    @settings(max_examples=60, deadline=None)
    def test_maximality(self, params):
        # No unmatched (x, y) edge can be added without violating
        # independence — the greedy result is maximal.
        g, X, Y = make_instance(params)
        pairs = greedy_independent_matching(g, X, Y, seed=0)
        used = set(int(v) for v in pairs.ravel())
        xs = set(int(x) for x in pairs[:, 0])
        ys = set(int(y) for y in pairs[:, 1])
        for y in Y:
            if int(y) in used:
                continue
            # y blocked if adjacent to a matched x.
            if any(int(nb) in xs for nb in g.neighbors(int(y))):
                continue
            for x in g.neighbors(int(y)):
                x = int(x)
                if x not in set(int(i) for i in X) or x in used:
                    continue
                if any(int(nb) in ys for nb in g.neighbors(x)):
                    continue
                raise AssertionError(
                    f"pair ({x}, {int(y)}) could extend the matching"
                )
