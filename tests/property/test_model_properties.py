"""Property-based tests for the radio kernel (hypothesis).

The vectorized kernel is differential-tested against the pure-Python
transcription of the model definition across arbitrary graphs and masks.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import gnp
from repro.radio import RadioNetwork

scenario = st.tuples(
    st.integers(min_value=2, max_value=30),  # n
    st.floats(min_value=0.0, max_value=0.8),  # p
    st.integers(min_value=0, max_value=10_000),  # graph seed
    st.integers(min_value=0, max_value=10_000),  # mask seed
    st.floats(min_value=0.0, max_value=1.0),  # transmit density
    st.floats(min_value=0.0, max_value=1.0),  # informed density
)


class TestKernelAgainstReference:
    @given(scenario)
    @settings(max_examples=120, deadline=None)
    def test_vectorized_equals_reference(self, params):
        n, p, gseed, mseed, tdens, idens = params
        g = gnp(n, p, seed=gseed)
        net = RadioNetwork(g)
        rng = np.random.default_rng(mseed)
        informed = rng.random(n) < idens
        transmitting = rng.random(n) < tdens
        a = net.step(transmitting, informed)
        b = net.step_reference(transmitting, informed)
        assert np.array_equal(a.received, b.received)
        assert np.array_equal(a.collided, b.collided)
        assert np.array_equal(a.newly_informed, b.newly_informed)


class TestModelInvariants:
    @given(scenario)
    @settings(max_examples=80, deadline=None)
    def test_reception_requires_neighboring_transmitter(self, params):
        n, p, gseed, mseed, tdens, idens = params
        g = gnp(n, p, seed=gseed)
        net = RadioNetwork(g)
        rng = np.random.default_rng(mseed)
        informed = rng.random(n) < idens
        transmitting = rng.random(n) < tdens
        res = net.step(transmitting, informed)
        receivers = np.flatnonzero(res.received)
        for w in receivers:
            # A receiver never transmits and has exactly one transmitting
            # neighbour, which is informed.
            assert not transmitting[w]
            senders = [v for v in g.neighbors(w) if transmitting[v]]
            assert len(senders) == 1
            assert informed[senders[0]]

    @given(scenario)
    @settings(max_examples=80, deadline=None)
    def test_collided_and_received_disjoint(self, params):
        n, p, gseed, mseed, tdens, idens = params
        g = gnp(n, p, seed=gseed)
        net = RadioNetwork(g)
        rng = np.random.default_rng(mseed)
        informed = rng.random(n) < idens
        transmitting = rng.random(n) < tdens
        res = net.step(transmitting, informed)
        assert not np.any(res.received & res.collided)
        # Transmitters neither receive nor collide.
        assert not np.any(res.received & transmitting)
        assert not np.any(res.collided & transmitting)

    @given(scenario)
    @settings(max_examples=60, deadline=None)
    def test_newly_informed_subset_of_received(self, params):
        n, p, gseed, mseed, tdens, idens = params
        g = gnp(n, p, seed=gseed)
        net = RadioNetwork(g)
        rng = np.random.default_rng(mseed)
        informed = rng.random(n) < idens
        transmitting = rng.random(n) < tdens
        res = net.step(transmitting, informed)
        assert np.all(res.received[res.newly_informed])
        assert not np.any(informed[res.newly_informed])
