"""Property-based tests for the extension substrates (hypothesis).

Gossip gets a full differential oracle: a naive dict-of-sets
reimplementation of the knowledge dynamics checked against the
matrix-based simulator on arbitrary graphs and rate sequences.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.broadcast.distributed import ObliviousProtocol
from repro.errors import BroadcastIncompleteError
from repro.faults import LossyLinkModel
from repro.gossip import simulate_gossip
from repro.graphs import gnp
from repro.graphs.bfs import bfs_distances
from repro.graphs.geometric import random_geometric
from repro.graphs.powerlaw import chung_lu
from repro.radio import RadioNetwork

gnp_params = st.tuples(
    st.integers(min_value=2, max_value=18),
    st.floats(min_value=0.3, max_value=0.9),
    st.integers(min_value=0, max_value=10_000),
)


def _reference_gossip(adj, rate_seq, seed, rounds):
    """Dict-of-sets transcription of the gossip dynamics (the oracle)."""
    n = adj.n
    rng = np.random.default_rng(seed)
    knowledge = {v: {v} for v in range(n)}
    history = []
    for t in range(rounds):
        q = rate_seq[t % len(rate_seq)]
        transmit = rng.random(n) < q
        new_knowledge = {v: set(s) for v, s in knowledge.items()}
        for w in range(n):
            if transmit[w]:
                continue
            senders = [v for v in adj.neighbors(w) if transmit[v]]
            if len(senders) == 1:
                new_knowledge[w] |= knowledge[senders[0]]
        knowledge = new_knowledge
        history.append(sum(len(s) for s in knowledge.values()))
    return knowledge, history


class TestGossipDifferential:
    @given(
        gnp_params,
        st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=4),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_matrix_simulator_matches_reference(self, params, rates, rounds):
        n, p, seed = params
        g = gnp(n, p, seed=seed)
        assume(bool(np.all(bfs_distances(g, 0) >= 0)))
        proto = ObliviousProtocol(rates, name="seq")
        # Run the real simulator for exactly `rounds` rounds by setting the
        # budget and swallowing the incomplete error.
        try:
            trace = simulate_gossip(
                RadioNetwork(g), proto, seed=seed, max_rounds=rounds
            )
        except BroadcastIncompleteError as exc:
            trace = exc.trace
        # The oracle uses the same Generator construction and draw order
        # (one rng.random(n) per round), so trajectories must align while
        # the simulator is still running (it stops early when complete).
        _, history = _reference_gossip(g, rates, seed, trace.num_rounds)
        got = [rec.pairs_known for rec in trace.records]
        assert got == history


class TestFaultProperties:
    @given(gnp_params, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_full_reliability_equals_kernel(self, params, mask_seed):
        n, p, seed = params
        g = gnp(n, p, seed=seed)
        links = LossyLinkModel(g, 1.0)
        rng = np.random.default_rng(mask_seed)
        transmitting = rng.random(n) < 0.4
        carrying = transmitting & (rng.random(n) < 0.7)
        total, message = links.sample_round_counts(transmitting, carrying, rng)
        assert np.array_equal(total, g.neighbor_counts(transmitting))
        assert np.array_equal(message, g.neighbor_counts(carrying))

    @given(gnp_params, st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=60, deadline=None)
    def test_lossy_counts_bounded_by_clean(self, params, reliability):
        n, p, seed = params
        g = gnp(n, p, seed=seed)
        links = LossyLinkModel(g, reliability)
        rng = np.random.default_rng(seed)
        transmitting = rng.random(n) < 0.5
        total, message = links.sample_round_counts(transmitting, transmitting, rng)
        clean = g.neighbor_counts(transmitting)
        assert np.all(total <= clean)
        assert np.all(message <= total)
        assert np.all(total >= 0)


class TestGeneratorProperties:
    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.02, max_value=0.6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_rgg_structure_and_geometry(self, n, radius, seed):
        layout = random_geometric(n, radius, seed=seed, return_layout=True)
        layout.adj.validate()
        pos = layout.positions
        r2 = radius * radius
        for u, v in layout.adj.edges():
            assert np.sum((pos[u] - pos[v]) ** 2) <= r2 + 1e-12

    @given(
        st.integers(min_value=2, max_value=60),
        st.floats(min_value=2.1, max_value=4.0),
        st.floats(min_value=1.0, max_value=10.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_chung_lu_structure(self, n, exponent, mean_degree, seed):
        from repro.graphs.powerlaw import powerlaw_weights

        w = powerlaw_weights(n, exponent, mean_degree)
        g = chung_lu(w, seed=seed)
        g.validate()
        assert g.n == n


class TestSelectorProperties:
    @given(
        st.integers(min_value=2, max_value=14),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_certified_family_selective_exhaustively(self, n, k, seed):
        # The raw random construction is selective only w.h.p. (hypothesis
        # finds small-(n, k) counterexamples); the certified repair mode
        # must be selective on every instance.
        from repro.broadcast.selectors import random_selective_family, verify_selective

        k = min(k, n)
        fam = random_selective_family(n, k, seed=seed, certified=True)
        assert verify_selective(fam, n, k)

    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_family_sets_within_range(self, n, seed):
        from repro.broadcast.selectors import random_selective_family

        fam = random_selective_family(n, min(4, n), seed=seed)
        for t in fam:
            assert np.all((t >= 0) & (t < n))
            assert np.unique(t).size == t.size


class TestOptimizerProperties:
    @given(
        st.integers(min_value=3, max_value=16),
        st.floats(min_value=0.4, max_value=0.9),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_optimize_preserves_completion(self, n, p, seed):
        from repro.broadcast.centralized import GreedyCoverScheduler, optimize_schedule
        from repro.radio import verify_schedule

        g = gnp(n, p, seed=seed)
        assume(bool(np.all(bfs_distances(g, 0) >= 0)))
        schedule = GreedyCoverScheduler(seed=0).build(g, 0)
        report = optimize_schedule(g, schedule, 0, max_passes=3)
        assert report.final_rounds <= report.initial_rounds
        assert verify_schedule(RadioNetwork(g), report.schedule, 0)


class TestMultimessageDifferential:
    @given(
        gnp_params,
        st.floats(min_value=0.1, max_value=1.0),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_pairs_known_matches_reference(self, params, rate, rounds, k):
        """k-token dynamics against a dict-of-sets oracle."""
        from repro.gossip import simulate_multimessage

        n, p, seed = params
        g = gnp(n, p, seed=seed)
        assume(bool(np.all(bfs_distances(g, 0) >= 0)))
        k = min(k, n)
        sources = list(range(k))
        try:
            trace = simulate_multimessage(
                RadioNetwork(g),
                ObliviousProtocol([rate], name="const"),
                sources,
                seed=seed,
                max_rounds=rounds,
            )
        except BroadcastIncompleteError as exc:
            trace = exc.trace
        # Oracle with identical draw order (one rng.random(n) per round).
        rng = np.random.default_rng(seed)
        knowledge = {v: set() for v in range(n)}
        for i, s in enumerate(sources):
            knowledge[s].add(i)
        history = []
        for _ in range(trace.num_rounds):
            draws = rng.random(n) < rate
            transmit = {v for v in range(n) if draws[v] and knowledge[v]}
            new_knowledge = {v: set(s) for v, s in knowledge.items()}
            for w in range(n):
                if w in transmit:
                    continue
                senders = [v for v in g.neighbors(w) if v in transmit]
                if len(senders) == 1:
                    new_knowledge[w] |= knowledge[senders[0]]
            knowledge = new_knowledge
            history.append(sum(len(s) for s in knowledge.values()))
        got = [rec.pairs_known for rec in trace.records]
        assert got == history
