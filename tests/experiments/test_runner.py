"""Unit tests for experiment result containers and helpers."""

import math

import numpy as np
import pytest

from repro.broadcast.distributed import UniformProtocol
from repro.experiments.runner import (
    ExperimentResult,
    aggregate,
    protocol_times,
    scheduler_rounds,
)
from repro.graphs import gnp_connected
from repro.radio import RadioNetwork
from repro.theory.fitting import linear_fit


class TestAggregate:
    def test_values(self):
        agg = aggregate([1, 2, 3, 4])
        assert agg["mean"] == 2.5
        assert agg["min"] == 1 and agg["max"] == 4
        assert agg["std"] == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_value(self):
        agg = aggregate([5])
        assert agg["std"] == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate([])


class TestExperimentResult:
    def make(self):
        res = ExperimentResult(
            experiment_id="EX",
            title="demo",
            claim="something grows",
            columns=["n", "t"],
            rows=[{"n": 10, "t": 4.0}, {"n": 100, "t": 8.0}],
        )
        res.fits["t vs ln n"] = linear_fit(
            np.log([10.0, 100.0]), np.array([4.0, 8.0]), "ln n"
        )
        res.notes.append("a note")
        return res

    def test_table_contains_everything(self):
        out = self.make().table()
        assert "[EX] demo" in out
        assert "fit t vs ln n" in out
        assert "note: a note" in out

    def test_markdown(self):
        out = self.make().to_markdown()
        assert out.startswith("### EX")
        assert "*Claim:*" in out
        assert "| n | t |" in out

    def test_column_extraction(self):
        res = self.make()
        assert list(res.column("t")) == [4.0, 8.0]

    def test_column_missing_is_nan(self):
        res = self.make()
        res.rows.append({"n": 5})
        assert math.isnan(res.column("t")[-1])


class TestMeasurementHelpers:
    def test_protocol_times_finite(self, gnp_small):
        times = protocol_times(
            RadioNetwork(gnp_small),
            UniformProtocol(0.1),
            repetitions=3,
            seed=0,
        )
        assert times.shape == (3,)
        assert np.all(np.isfinite(times))

    def test_protocol_times_inf_on_budget_miss(self, gnp_small):
        times = protocol_times(
            RadioNetwork(gnp_small),
            UniformProtocol(1.0),  # permanent flooding deadlocks
            repetitions=2,
            seed=0,
            max_rounds=30,
        )
        assert np.all(np.isinf(times))

    def test_scheduler_rounds(self):
        from repro.broadcast.centralized import GreedyCoverScheduler

        graphs = [gnp_connected(60, 0.15, seed=s) for s in (1, 2)]
        rounds = scheduler_rounds(lambda: GreedyCoverScheduler(seed=0), graphs)
        assert rounds.shape == (2,)
        assert np.all(rounds >= 1)
