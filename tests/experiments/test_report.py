"""Unit tests for table rendering."""

import pytest

from repro.experiments.report import format_markdown_table, format_table, format_value


class TestFormatValue:
    def test_none_blank(self):
        assert format_value(None) == ""

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_integral_float(self):
        assert format_value(3.0) == "3"

    def test_rounded_float(self):
        assert format_value(3.14159, float_digits=3) == "3.14"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_int(self):
        assert format_value(42) == "42"


class TestFormatTable:
    ROWS = [{"n": 10, "t": 1.5}, {"n": 100, "t": 2.25}]

    def test_contains_all_cells(self):
        out = format_table(self.ROWS, ["n", "t"])
        assert "10" in out and "100" in out and "1.5" in out and "2.25" in out

    def test_title(self):
        out = format_table(self.ROWS, ["n", "t"], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_alignment_consistent(self):
        out = format_table(self.ROWS, ["n", "t"])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # all rows same width

    def test_missing_column_blank(self):
        out = format_table([{"a": 1}], ["a", "b"])
        assert "1" in out

    def test_empty_rows(self):
        out = format_table([], ["a", "b"])
        assert "a" in out and "b" in out

    def test_empty_columns_raises(self):
        with pytest.raises(ValueError):
            format_table(self.ROWS, [])


class TestMarkdown:
    def test_structure(self):
        out = format_markdown_table([{"a": 1, "b": 2}], ["a", "b"])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_empty_columns_raises(self):
        with pytest.raises(ValueError):
            format_markdown_table([], [])


class TestSparkline:
    def test_basic_rendering(self):
        from repro.experiments.report import format_sparkline

        out = format_sparkline([0, 1, 2, 3])
        assert len(out) == 4
        assert out[0] == "▁"
        assert out[-1] == "█"

    def test_downsampling(self):
        from repro.experiments.report import format_sparkline

        out = format_sparkline(list(range(500)), width=50)
        assert len(out) == 50

    def test_constant_series_flat(self):
        from repro.experiments.report import format_sparkline

        assert format_sparkline([7, 7, 7]) == "▁▁▁"

    def test_monotone_input_monotone_output(self):
        from repro.experiments.report import _SPARK_CHARS, format_sparkline

        out = format_sparkline([1, 4, 9, 16, 25])
        levels = [_SPARK_CHARS.index(c) for c in out]
        assert levels == sorted(levels)

    def test_empty_raises(self):
        import pytest

        from repro.experiments.report import format_sparkline

        with pytest.raises(ValueError):
            format_sparkline([])
