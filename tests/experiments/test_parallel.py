"""Tests for the parallel sweep executor (jobs-independence, seeding)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.experiments.parallel import (
    SweepTask,
    child_seed_int,
    run_catalog_parallel,
    run_parallel_sweep,
)
from repro.experiments.resilient import run_resilient_sweep
from repro.rng import spawn_seeds


def _draw(seed, count=4):
    """Module-level so it pickles into worker processes."""
    return list(np.random.default_rng(seed).random(count))


def _sweep_mean(seed, trials=5):
    """A resilient sub-sweep as one parallel config (module-level)."""
    result = run_resilient_sweep(
        lambda index, rng: _trial(index, rng), trials, seed=seed
    )
    return result.mean_rounds()


def _trial(index, rng):
    from repro.experiments.resilient import TrialOutcome

    return TrialOutcome(completed=True, rounds=float(rng.integers(1, 100)), informed_fraction=1.0)


class TestRunParallelSweep:
    def test_results_in_task_order(self):
        tasks = [SweepTask(key=f"t{i}", fn=_draw, kwargs={"count": i + 1}) for i in range(3)]
        results = run_parallel_sweep(tasks, jobs=1, seed=0)
        assert [len(r) for r in results] == [1, 2, 3]

    def test_jobs_do_not_change_results(self):
        tasks = [SweepTask(key=f"t{i}", fn=_draw) for i in range(5)]
        serial = run_parallel_sweep(tasks, jobs=1, seed=123)
        fanned = run_parallel_sweep(tasks, jobs=3, seed=123)
        assert serial == fanned

    def test_configs_get_distinct_streams(self):
        tasks = [SweepTask(key=f"t{i}", fn=_draw) for i in range(6)]
        results = run_parallel_sweep(tasks, jobs=1, seed=9)
        firsts = [r[0] for r in results]
        assert len(set(firsts)) == 6

    def test_seed_changes_results(self):
        tasks = [SweepTask(key="t", fn=_draw)]
        a = run_parallel_sweep(tasks, jobs=1, seed=1)
        b = run_parallel_sweep(tasks, jobs=1, seed=2)
        assert a != b

    def test_rejects_bad_jobs(self):
        with pytest.raises(InvalidParameterError):
            run_parallel_sweep([SweepTask(key="t", fn=_draw)], jobs=0, seed=0)

    def test_empty_tasks(self):
        assert run_parallel_sweep([], jobs=2, seed=0) == []


class TestResilientComposition:
    def test_parallel_resilient_sweeps_match_serial(self):
        # Each config is a whole resilient sweep seeded by its spawned
        # child; worker-process execution must not change any trial.
        tasks = [
            SweepTask(key=f"cfg{i}", fn=_sweep_mean, kwargs={"trials": 4})
            for i in range(3)
        ]
        serial = run_parallel_sweep(tasks, jobs=1, seed=77)
        fanned = run_parallel_sweep(tasks, jobs=2, seed=77)
        assert serial == fanned

    def test_sibling_configs_have_distinct_trial_streams(self):
        # Spawned children share entropy and differ only by spawn_key;
        # the resilient engine's per-trial derivation must preserve it
        # (the pre-fix behaviour collapsed all siblings onto one stream).
        means = run_parallel_sweep(
            [SweepTask(key=f"cfg{i}", fn=_sweep_mean) for i in range(4)],
            jobs=1,
            seed=5,
        )
        assert len(set(means)) == 4

    def test_spawned_children_derive_distinct_attempt_rngs(self):
        from repro.experiments.resilient import _attempt_rng

        kids = spawn_seeds(0, 2)
        a = _attempt_rng(kids[0], 0, 0).random()
        b = _attempt_rng(kids[1], 0, 0).random()
        assert a != b


class TestChildSeedInt:
    def test_deterministic_and_distinct(self):
        kids = spawn_seeds(42, 8)
        ints = [child_seed_int(k) for k in kids]
        again = [child_seed_int(k) for k in spawn_seeds(42, 8)]
        assert ints == again
        assert len(set(ints)) == 8


class TestRunCatalogParallel:
    def test_jobs_identity_on_experiments(self):
        # The CLI acceptance property: run-all --jobs 1 and --jobs 2 emit
        # byte-identical tables for the same root seed.  E7 is the
        # cheapest catalogued experiment; two instances force real
        # worker-process fan-out on the jobs=2 side.
        serial = run_catalog_parallel(["E7", "E7"], quick=True, seed=3, jobs=1)
        fanned = run_catalog_parallel(["E7", "E7"], quick=True, seed=3, jobs=2)
        assert [r.table() for r in serial] == [r.table() for r in fanned]
        # Distinct child seeds: the two instances are different sweeps.
        assert serial[0].table() != serial[1].table()

    def test_result_order_matches_request(self):
        results = run_catalog_parallel(["E7", "E7"], quick=True, seed=1, jobs=1)
        assert [r.experiment_id for r in results] == ["E7", "E7"]
