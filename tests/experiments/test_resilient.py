"""Unit tests for the resilient sweep engine + the robustness acceptance demos."""

import json
import math

import numpy as np
import pytest

from repro.broadcast.distributed import EGRandomizedProtocol, EpochRestartProtocol
from repro.errors import InvalidParameterError, ReproError
from repro.experiments.resilient import (
    STATUS_ERROR,
    STATUS_INCOMPLETE,
    STATUS_OK,
    SweepCheckpoint,
    TrialOutcome,
    TrialRecord,
    run_resilient_sweep,
)
from repro.faults import ChurnSchedule, FaultPlan, simulate_broadcast_faulty
from repro.graphs import gnp_connected
from repro.radio import RadioNetwork


def ok_trial(index, rng):
    return TrialOutcome(completed=True, rounds=10.0 + index,
                        informed_fraction=1.0)


class TestRunResilientSweep:
    def test_all_ok(self):
        res = run_resilient_sweep(ok_trial, 4, seed=0)
        assert res.num_trials == 4
        assert res.completion_fraction == 1.0
        assert res.failure_counts() == {}
        assert res.mean_rounds() == pytest.approx(11.5)

    def test_trial_rng_is_deterministic(self):
        draws = {}

        def trial(index, rng):
            draws.setdefault(index, []).append(rng.random())
            return ok_trial(index, rng)

        run_resilient_sweep(trial, 3, seed=42)
        run_resilient_sweep(trial, 3, seed=42)
        for vals in draws.values():
            assert vals[0] == vals[1]

    def test_retry_uses_fresh_stream_then_succeeds(self):
        seen = {}

        def flaky(index, rng):
            seen.setdefault(index, []).append(rng.random())
            if index == 1 and len(seen[1]) == 1:
                raise RuntimeError("transient")
            return ok_trial(index, rng)

        res = run_resilient_sweep(flaky, 3, seed=0, max_attempts=3)
        assert res.completion_fraction == 1.0
        rec = res.records[1]
        assert rec.attempts == 2
        assert rec.status == STATUS_OK
        # Attempt 2 ran on an independent child stream.
        assert seen[1][0] != seen[1][1]

    def test_error_after_max_attempts_does_not_abort_sweep(self):
        def doomed(index, rng):
            if index == 0:
                raise ValueError("poisoned trial")
            return ok_trial(index, rng)

        res = run_resilient_sweep(doomed, 3, seed=0, max_attempts=2)
        assert res.num_trials == 3
        rec = res.records[0]
        assert rec.status == STATUS_ERROR
        assert rec.attempts == 2
        assert "poisoned" in rec.error
        assert math.isinf(rec.rounds)
        assert res.failure_counts() == {STATUS_ERROR: 1}

    def test_incomplete_outcome_recorded_not_retried(self):
        calls = {"n": 0}

        def stalls(index, rng):
            calls["n"] += 1
            return TrialOutcome(completed=False, rounds=float("inf"),
                                informed_fraction=0.25)

        res = run_resilient_sweep(stalls, 2, seed=0, max_attempts=5)
        assert calls["n"] == 2  # a budget miss is measured, not retried
        for rec in res.records:
            assert rec.status == STATUS_INCOMPLETE
            assert rec.informed_fraction == 0.25
        # No successful trial anywhere: the aggregate degrades to inf.
        assert res.mean_rounds() == float("inf")
        assert res.completion_fraction == 0.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            run_resilient_sweep(ok_trial, 0)
        with pytest.raises(InvalidParameterError):
            run_resilient_sweep(ok_trial, 1, max_attempts=0)


class TestCheckpointResume:
    def test_interrupted_resume_matches_uninterrupted(self, tmp_path):
        """Acceptance demo (a): kill-and-resume == one uninterrupted run."""
        draws = {}

        def trial(index, rng):
            draws[index] = rng.random()
            return TrialOutcome(completed=True, rounds=draws[index],
                                informed_fraction=1.0)

        uninterrupted = run_resilient_sweep(trial, 6, seed=7)
        ck = tmp_path / "sweep.json"
        # "Kill" the sweep after 2 trials, then resume twice.
        partial = run_resilient_sweep(
            trial, 6, seed=7, checkpoint=ck, config_key="demo",
            max_trials_this_run=2,
        )
        assert partial.num_trials == 2
        resumed = run_resilient_sweep(
            trial, 6, seed=7, checkpoint=ck, config_key="demo", resume=True,
            max_trials_this_run=2,
        )
        assert resumed.num_trials == 4
        final = run_resilient_sweep(
            trial, 6, seed=7, checkpoint=ck, config_key="demo", resume=True,
        )
        assert final.num_trials == 6
        # Bit-identical rounds and aggregates.
        assert np.array_equal(final.rounds(), uninterrupted.rounds())
        assert final.summary() == uninterrupted.summary()

    def test_config_key_mismatch_refuses_to_mix(self, tmp_path):
        ck = tmp_path / "sweep.json"
        run_resilient_sweep(ok_trial, 2, seed=0, checkpoint=ck, config_key="a")
        with pytest.raises(ReproError, match="refusing to mix"):
            run_resilient_sweep(
                ok_trial, 2, seed=0, checkpoint=ck, config_key="b", resume=True
            )

    def test_malformed_checkpoint_quarantined(self, tmp_path):
        """A corrupt file restarts the sweep fresh instead of crashing."""
        ck = tmp_path / "sweep.json"
        ck.write_text("not json at all")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            records = SweepCheckpoint(ck).load()
        assert records == {}
        assert not ck.exists()
        quarantined = tmp_path / "sweep.json.corrupt"
        assert quarantined.read_text() == "not json at all"

    @pytest.mark.parametrize(
        "garbage",
        ['{"records": []}', '{"config_key": "k", "records": "nope"}', "[1, 2]"],
    )
    def test_truncated_payload_quarantined(self, tmp_path, garbage):
        ck = tmp_path / "sweep.json"
        ck.write_text(garbage)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert SweepCheckpoint(ck, "k").load() == {}

    def test_resume_restarts_fresh_after_quarantine(self, tmp_path):
        """An end-to-end resume over a corrupt checkpoint reruns everything."""
        ck = tmp_path / "sweep.json"
        ck.write_text('{"truncated')
        with pytest.warns(RuntimeWarning, match="quarantined"):
            res = run_resilient_sweep(
                ok_trial, 3, seed=0, checkpoint=ck, config_key="k", resume=True
            )
        assert res.num_trials == 3
        assert res.completion_fraction == 1.0
        # The rerun rewrote a healthy checkpoint at the original path.
        assert len(SweepCheckpoint(ck, "k").load()) == 3

    def test_checkpoint_file_is_valid_json_with_sorted_records(self, tmp_path):
        ck = tmp_path / "sweep.json"
        run_resilient_sweep(ok_trial, 3, seed=0, checkpoint=ck, config_key="k")
        payload = json.loads(ck.read_text())
        assert payload["config_key"] == "k"
        assert [r["index"] for r in payload["records"]] == [0, 1, 2]
        loaded = SweepCheckpoint(ck, "k").load()
        assert loaded[1] == TrialRecord.from_json(payload["records"][1])

    def test_checkpoint_every_batches_flushes(self, tmp_path):
        ck = tmp_path / "sweep.json"
        flushes = []
        real_save = SweepCheckpoint.save

        class CountingCheckpoint(SweepCheckpoint):
            def save(self, records):
                flushes.append(len(records))
                real_save(self, records)

        run_resilient_sweep(
            ok_trial, 5, seed=0,
            checkpoint=CountingCheckpoint(ck, ""), checkpoint_every=2,
        )
        # Flushes at 2, 4 and a final partial flush of 5.
        assert flushes == [2, 4, 5]
        assert len(SweepCheckpoint(ck, "").load()) == 5


class TestChurnResilienceDemo:
    """Acceptance demo (b): epoch restart completes where stock EG stalls."""

    @pytest.fixture(scope="class")
    def churn_setup(self):
        n = 256
        d = 4.0 * math.log(n)
        p = d / n
        g = gnp_connected(n, p, seed=42)
        return g, n, p

    def _sweep(self, churn_setup, proto_factory, trials=6):
        g, n, p = churn_setup
        net = RadioNetwork(g)

        def trial(index, rng):
            plan = FaultPlan(
                churn=ChurnSchedule.random(
                    n, 0.6, 120, mean_downtime=40.0, seed=rng, protect=[0]
                )
            )
            return simulate_broadcast_faulty(
                net, proto_factory(), plan=plan, seed=rng, p=p,
                max_rounds=600, check_connected=False,
                raise_on_incomplete=False,
            )

        return run_resilient_sweep(trial, trials, seed=3)

    def test_stock_strict_protocol_stalls_under_churn(self, churn_setup):
        g, n, p = churn_setup
        res = self._sweep(
            churn_setup,
            lambda: EGRandomizedProtocol(n, p, strict_participation=True),
        )
        assert res.completion_fraction < 1.0
        # Failures land as structured records with partial progress, not
        # as exceptions.
        failed = [r for r in res.records if r.status != STATUS_OK]
        assert failed
        for rec in failed:
            assert rec.status == STATUS_INCOMPLETE
            assert 0.0 < rec.informed_fraction < 1.0
            assert math.isinf(rec.rounds)

    def test_epoch_restart_completes_under_same_churn(self, churn_setup):
        g, n, p = churn_setup
        res = self._sweep(
            churn_setup,
            lambda: EpochRestartProtocol.for_eg(n, p, strict_participation=True),
        )
        assert res.completion_fraction == 1.0
        assert all(np.isfinite(res.rounds()))
