"""Catalog registry tests plus scaled-down runs of every experiment.

The full quick-mode experiments run in the benchmark suite; here each
experiment function is exercised once (quick mode, fixed seed) to pin the
interface: correct id, populated rows, claimed columns present, fits sane.
These are the integration tests that keep the benchmark harness honest.
"""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment


class TestRegistry:
    def test_all_experiments_present(self):
        assert list(EXPERIMENTS) == [f"E{i}" for i in range(1, 24)]

    def test_specs_complete(self):
        for spec in EXPERIMENTS.values():
            assert spec.title
            assert spec.claim
            assert spec.bench_target.startswith("benchmarks/")

    def test_lookup_case_insensitive(self):
        assert get_experiment("e4").experiment_id == "E4"

    def test_unknown_raises(self):
        with pytest.raises(InvalidParameterError, match="unknown experiment"):
            get_experiment("E99")


@pytest.mark.parametrize("eid", list(EXPERIMENTS))
class TestEveryExperimentRuns:
    def test_quick_run_produces_table(self, eid):
        result = run_experiment(eid, quick=True, seed=123)
        assert result.experiment_id == eid
        assert result.rows, f"{eid} produced no rows"
        assert result.columns
        # Every declared column appears in at least one row.
        for col in result.columns:
            assert any(col in row for row in result.rows), (
                f"{eid}: column {col!r} missing from all rows"
            )


class TestClaimShapes:
    """Assertions on the *direction* of each reproduced claim.

    Loose thresholds: these guard the qualitative finding (who wins, what
    grows), not the constants.
    """

    @pytest.fixture(scope="class")
    def results(self):
        # One shared quick run per experiment used by shape checks below.
        return {eid: run_experiment(eid, quick=True, seed=7) for eid in
                ["E1", "E3", "E4", "E5", "E9", "E10", "E11"]}

    def test_e1_sequential_much_slower(self, results):
        r = results["E1"]
        eg = r.column("eg mean")
        seq = r.column("sequential mean")
        # The collision-free baseline loses everywhere, increasingly so.
        assert np.all(seq > eg)
        assert seq[-1] / eg[-1] > 4

    def test_e1_eg_growth_sublinear(self, results):
        r = results["E1"]
        ns = r.column("n")
        eg = r.column("eg mean")
        assert eg[-1] / eg[0] < 2.0  # 8x n growth, < 2x time growth
        assert ns[-1] / ns[0] >= 8

    def test_e3_survival_monotone_decreasing(self, results):
        r = results["E3"]
        probs = [row["survival prob"] for row in r.rows if row.get("survival prob") is not None]
        assert probs[0] == 1.0
        assert probs[-1] <= 0.2
        assert all(a >= b - 0.15 for a, b in zip(probs, probs[1:]))

    def test_e3_relaxed_fit_positive_slope(self, results):
        fit = results["E3"].fits["relaxed rounds vs ln n"]
        assert fit.slope > 0

    def test_e4_lnn_fit_positive_and_decent(self, results):
        r = results["E4"]
        fit = r.fits["d = 4 ln n vs ln n"]
        assert fit.slope > 0

    def test_e5_eg_beats_decay_everywhere(self, results):
        r = results["E5"]
        assert np.all(r.column("decay / eg") > 1.2)

    def test_e9_coverage_constant_fraction(self, results):
        r = results["E9"]
        assert np.all(r.column("indep-cover coverage") > 0.2)

    def test_e9_matching_complete_at_d_squared(self, results):
        r = results["E9"]
        # The last row has |X|/|Y| ~ d²: matching completeness near 1.
        assert r.column("matching completeness")[-1] > 0.9

    def test_e10_dense_fit_positive(self, results):
        fit = results["E10"].fits["rounds vs ln n/ln(1/f)"]
        assert fit.slope > 0
        assert fit.r_squared > 0.7

    def test_e11_radio_within_constant_of_push(self, results):
        r = results["E11"]
        ratios = r.column("radio / push")
        assert np.all(ratios < 4.0)
        assert np.all(ratios > 0.25)


class TestExtensionClaimShapes:
    """Direction checks for the extension experiments (E13–E22)."""

    @pytest.fixture(scope="class")
    def results(self):
        return {eid: run_experiment(eid, quick=True, seed=11) for eid in
                ["E13", "E15", "E16", "E17", "E18", "E20", "E21", "E22"]}

    def test_e13_gossip_strictly_harder(self, results):
        r = results["E13"]
        assert np.all(r.column("gossip / broadcast") > 1.2)
        assert r.fits["gossip vs d ln n"].slope > 0

    def test_e13_injection_dominates(self, results):
        r = results["E13"]
        first = r.column("first-complete-node mean")
        total = r.column("gossip mean (uniform 1/d)")
        assert np.all(first > 0.5 * total)

    def test_e15_diameter_bound(self, results):
        r = results["E15"]
        assert r.fits["rgg decay vs diameter"].slope > 0
        # RGG diameter grows with n.
        diams = r.column("rgg diameter")
        assert diams[-1] > diams[0]

    def test_e16_adaptive_wins_off_expanders(self, results):
        rows = {row["family"]: row for row in results["E16"].rows}
        for fam in ("torus 32x32", "rgg"):
            assert rows[fam]["age-based mean"] < rows[fam]["eg mean"]

    def test_e17_decay_degree_robust(self, results):
        rows = {row["graph"]: row for row in results["E17"].rows}
        base = rows["gnp (uniform)"]["decay mean"]
        for name, row in rows.items():
            if name.startswith("chung-lu"):
                assert row["decay mean"] < 1.3 * base

    def test_e18_tree_bfs_deep(self, results):
        r = results["E18"]
        extra = r.column("tree depth mean") - r.column("bfs depth")
        assert np.all(extra >= 0)
        assert np.all(extra < 6)

    def test_e20_saturating_growth(self, results):
        times = results["E20"].column("rounds mean")
        assert times[-1] > times[0]
        assert times[-1] < 1.4 * times[-2]  # saturation

    def test_e21_regime_separation(self, results):
        r = results["E21"]
        gaps = r.column("spectral gap")
        times = r.column("decay mean")
        assert times[gaps >= 0.05].max() < times[gaps < 0.05].min()

    def test_e22_models_equivalent(self, results):
        ratios = results["E22"].column("ratio (gnm/gnp, protocol)")
        assert np.all((ratios > 0.7) & (ratios < 1.4))
