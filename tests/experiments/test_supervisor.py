"""Supervised executor tests: chaos harness, recovery paths, determinism.

The acceptance properties pinned here:

* a sweep in which chaos injection kills a worker mid-flight completes
  with results byte-identical to the unfaulted ``jobs=1`` run;
* a deadline-expired task yields a ``timeout`` outcome without aborting
  or stalling the remaining tasks;
* degradation to serial execution still completes the sweep;
* sweep-level resume skips completed tasks.
"""

import json
import time

import pytest

from repro.errors import InvalidParameterError, ReproError, SweepTaskError
from repro.experiments.chaos import (
    CRASH_EXIT_CODE,
    ChaosError,
    attempt_count,
    chaos_payload,
    chaos_task,
    healthy_task,
)
from repro.experiments.parallel import run_parallel_sweep
from repro.experiments.runner import outcomes_table
from repro.experiments.supervisor import (
    TASK_CRASHED,
    TASK_ERROR,
    TASK_OK,
    TASK_TIMEOUT,
    SweepTask,
    SweepTaskCheckpoint,
    TaskOutcome,
    outcome_counts,
    run_supervised_sweep,
)
from repro.obs import (
    MemoryTraceSink,
    MetricsRegistry,
    Observer,
    use_observer,
)
from repro.obs.sinks import validate_event


def healthy_tasks(count):
    return [SweepTask(key=f"t{i}", fn=healthy_task) for i in range(count)]


def chaos_sweep_task(key, state_dir, **injections):
    return SweepTask(
        key=key,
        fn=chaos_task,
        kwargs={"key": key, "state_dir": state_dir, **injections},
    )


class TestChaosHarness:
    """The harness itself must be deterministic before it verifies anything."""

    def test_payload_is_pure_function_of_seed(self):
        import numpy as np

        child = np.random.SeedSequence(7).spawn(1)[0]
        assert chaos_payload(child) == chaos_payload(child)
        assert healthy_task(child) == chaos_payload(child)

    def test_zero_injection_equals_healthy(self, tmp_path):
        import numpy as np

        child = np.random.SeedSequence(3).spawn(1)[0]
        assert chaos_task(
            child, key="k", state_dir=tmp_path
        ) == healthy_task(child)

    def test_attempt_counter_persists_across_calls(self, tmp_path):
        import numpy as np

        child = np.random.SeedSequence(0).spawn(1)[0]
        assert attempt_count(tmp_path, "k") == 0
        with pytest.raises(ChaosError, match="attempt 1"):
            chaos_task(child, key="k", state_dir=tmp_path, error_attempts=2)
        assert attempt_count(tmp_path, "k") == 1
        with pytest.raises(ChaosError, match="attempt 2"):
            chaos_task(child, key="k", state_dir=tmp_path, error_attempts=2)
        # Attempt 3 falls past the error window and succeeds.
        assert chaos_task(
            child, key="k", state_dir=tmp_path, error_attempts=2
        ) == chaos_payload(child)
        assert attempt_count(tmp_path, "k") == 3

    def test_fault_schedule_ordering(self, tmp_path):
        """crash window, then error window, then hang window, then ok."""
        import numpy as np

        child = np.random.SeedSequence(0).spawn(1)[0]
        kwargs = dict(
            key="k",
            state_dir=tmp_path,
            error_attempts=1,
            hang_attempts=1,
            hang_seconds=0.01,
        )
        with pytest.raises(ChaosError):
            chaos_task(child, **kwargs)
        start = time.monotonic()
        assert chaos_task(child, **kwargs) == chaos_payload(child)  # hangs briefly
        assert time.monotonic() - start >= 0.01
        assert chaos_task(child, **kwargs) == chaos_payload(child)

    def test_crash_really_kills_the_process(self, tmp_path):
        """os._exit must not be catchable — prove it in a child process."""
        import subprocess
        import sys

        code = (
            "import numpy as np\n"
            "from repro.experiments.chaos import chaos_task\n"
            "child = np.random.SeedSequence(0).spawn(1)[0]\n"
            "try:\n"
            f"    chaos_task(child, key='k', state_dir={str(tmp_path)!r}, "
            "crash_attempts=1)\n"
            "except BaseException:\n"
            "    pass\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == CRASH_EXIT_CODE
        assert "survived" not in proc.stdout
        assert attempt_count(tmp_path, "k") == 1


class TestTaskOutcome:
    def test_json_round_trip(self):
        outcome = TaskOutcome(
            key="E7", status=TASK_OK, result=[1.5, 2.5], attempts=2, elapsed=0.25
        )
        again = TaskOutcome.from_json(outcome.to_json())
        assert again == outcome

    def test_failed_outcome_drops_result(self):
        outcome = TaskOutcome(
            key="E7", status=TASK_ERROR, result="stale", error="boom"
        )
        payload = outcome.to_json()
        assert payload["result"] is None
        assert TaskOutcome.from_json(payload).error == "boom"

    def test_outcome_counts(self):
        outcomes = [
            TaskOutcome(key="a", status=TASK_OK),
            TaskOutcome(key="b", status=TASK_OK),
            TaskOutcome(key="c", status=TASK_TIMEOUT),
        ]
        assert outcome_counts(outcomes) == {TASK_OK: 2, TASK_TIMEOUT: 1}

    def test_outcome_counts_with_recovery_totals(self):
        outcomes = [
            TaskOutcome(key="a", status=TASK_OK, requeued=2, lost_leases=1),
            TaskOutcome(key="b", status=TASK_OK, requeued=1),
        ]
        counts = outcome_counts(outcomes, with_recovery=True)
        assert counts == {TASK_OK: 2, "requeued": 3, "lost_leases": 1}
        # Zero recovery stays invisible, even when asked for.
        clean = [TaskOutcome(key="a", status=TASK_OK)]
        assert outcome_counts(clean, with_recovery=True) == {TASK_OK: 1}

    def test_shard_attribution_json_round_trip(self):
        outcome = TaskOutcome(
            key="E7",
            status=TASK_CRASHED,
            attempts=3,
            error="worker lost (partition)",
            host="lab-3/4411",
            requeued=2,
            lost_leases=1,
        )
        again = TaskOutcome.from_json(outcome.to_json())
        assert (again.host, again.requeued, again.lost_leases) == ("lab-3/4411", 2, 1)
        assert again == outcome

    def test_from_json_tolerates_pre_fabric_payloads(self):
        """Checkpoints written before shard attribution existed load with
        neutral defaults instead of KeyErrors."""
        legacy = {
            "key": "E7",
            "status": TASK_OK,
            "result": [1.0],
            "attempts": 1,
            "elapsed": 0.5,
            "error": "",
        }
        outcome = TaskOutcome.from_json(legacy)
        assert (outcome.host, outcome.requeued, outcome.lost_leases) == ("", 0, 0)

    def test_local_sweep_stamps_local_host(self):
        outcomes = run_supervised_sweep(healthy_tasks(2), jobs=1, seed=0)
        assert all(o.host == "local" for o in outcomes)

    def test_outcomes_table_renders(self):
        outcomes = [
            TaskOutcome(key="E7", status=TASK_OK, attempts=1, elapsed=1.0),
            TaskOutcome(
                key="E14", status=TASK_CRASHED, attempts=3, elapsed=2.0,
                error="worker process died",
            ),
        ]
        table = outcomes_table(outcomes)
        assert "task" in table and "status" in table
        assert "E14" in table and "crashed" in table and "worker process died" in table

    def test_outcomes_table_renders_shard_attribution(self):
        outcomes = [
            TaskOutcome(
                key="E7", status=TASK_OK, attempts=2, elapsed=1.0,
                host="lab-3/4411", requeued=1, lost_leases=1,
            ),
        ]
        table = outcomes_table(outcomes)
        assert "host" in table and "requeued" in table and "lost_leases" in table
        assert "lab-3/4411" in table


class TestHealthyPath:
    """Zero faults: supervision must be invisible in the results."""

    def test_outcomes_in_task_order_all_ok(self):
        outcomes = run_supervised_sweep(healthy_tasks(4), jobs=1, seed=0)
        assert [o.key for o in outcomes] == ["t0", "t1", "t2", "t3"]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_jobs_do_not_change_results(self):
        serial = run_supervised_sweep(healthy_tasks(5), jobs=1, seed=123)
        fanned = run_supervised_sweep(healthy_tasks(5), jobs=3, seed=123)
        assert [o.result for o in serial] == [o.result for o in fanned]

    def test_matches_legacy_wrapper(self):
        tasks = healthy_tasks(3)
        outcomes = run_supervised_sweep(tasks, jobs=1, seed=9)
        assert run_parallel_sweep(tasks, jobs=1, seed=9) == [
            o.result for o in outcomes
        ]

    def test_empty_tasks(self):
        assert run_supervised_sweep([], jobs=2, seed=0) == []
        assert run_parallel_sweep([], jobs=2, seed=0) == []

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            run_supervised_sweep(healthy_tasks(1), jobs=0)
        with pytest.raises(InvalidParameterError):
            run_supervised_sweep(healthy_tasks(1), max_task_retries=-1)
        with pytest.raises(InvalidParameterError):
            run_supervised_sweep(healthy_tasks(1), max_pool_rebuilds=-1)
        with pytest.raises(InvalidParameterError):
            run_supervised_sweep(healthy_tasks(1), task_timeout=0.0)

    def test_checkpoint_requires_unique_keys(self, tmp_path):
        tasks = [SweepTask(key="dup", fn=healthy_task)] * 2
        with pytest.raises(InvalidParameterError, match="unique task keys"):
            run_supervised_sweep(tasks, checkpoint=tmp_path / "ck.json")


class TestCrashRecovery:
    def test_crash_then_recover_byte_identity(self, tmp_path):
        """Acceptance: a worker killed mid-flight does not change results."""
        keys = [f"c{i}" for i in range(4)]
        faulted = [
            chaos_sweep_task(
                k, tmp_path, crash_attempts=1 if k == "c1" else 0
            )
            for k in keys
        ]
        unfaulted = [SweepTask(key=k, fn=healthy_task) for k in keys]

        baseline = run_supervised_sweep(unfaulted, jobs=1, seed=77)
        recovered = run_supervised_sweep(faulted, jobs=2, seed=77)

        assert all(o.ok for o in recovered)
        assert [o.result for o in recovered] == [o.result for o in baseline]
        # The crashed task really did die once and retry.
        assert attempt_count(tmp_path, "c1") == 2

    def test_poisoned_task_marked_crashed_siblings_survive(self, tmp_path):
        tasks = [chaos_sweep_task("poison", tmp_path, crash_attempts=99)] + [
            SweepTask(key=f"g{i}", fn=healthy_task) for i in range(2)
        ]
        # Generous budgets: innocents sharing a pool with the poisoned
        # task may be charged for breaks they did not cause.
        outcomes = run_supervised_sweep(
            tasks, jobs=2, seed=5, max_task_retries=3, max_pool_rebuilds=10
        )
        assert outcomes[0].status == TASK_CRASHED
        assert outcomes[0].attempts == 4
        assert "worker process died" in outcomes[0].error
        assert all(o.ok for o in outcomes[1:])

    def test_legacy_wrapper_raises_sweep_task_error_on_crash(self, tmp_path):
        # The healthy sibling keeps the sweep on the pooled path; a
        # lone chaos task would run in-process and kill the test runner.
        tasks = [
            chaos_sweep_task("poison", tmp_path, crash_attempts=99),
            SweepTask(key="g", fn=healthy_task),
        ]
        with pytest.raises(SweepTaskError, match="crashed"):
            run_parallel_sweep(
                tasks, jobs=2, seed=0, max_task_retries=0, max_pool_rebuilds=5
            )

    def test_degradation_to_serial_completes_sweep(self, tmp_path):
        """Rebuild budget exhausted -> in-process execution finishes the job."""
        tasks = [chaos_sweep_task("p", tmp_path, crash_attempts=3)] + [
            SweepTask(key=f"g{i}", fn=healthy_task) for i in range(2)
        ]
        baseline = run_supervised_sweep(
            [SweepTask(key=k.key, fn=healthy_task) for k in tasks], jobs=1, seed=11
        )
        outcomes = run_supervised_sweep(
            tasks, jobs=2, seed=11, max_task_retries=4, max_pool_rebuilds=2
        )
        assert all(o.ok for o in outcomes)
        # Three crashes burned the rebuild budget; attempt 4 ran serially.
        assert outcomes[0].attempts == 4
        assert [o.result for o in outcomes] == [o.result for o in baseline]


class TestErrorRetry:
    def test_retry_reuses_original_seed(self, tmp_path):
        """Determinism-under-retry: attempt 2 sees the same child stream."""
        tasks = [chaos_sweep_task("e", tmp_path, error_attempts=1)]
        baseline = run_supervised_sweep(
            [SweepTask(key="e", fn=healthy_task)], jobs=1, seed=21
        )
        outcomes = run_supervised_sweep(tasks, jobs=1, seed=21)
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2
        assert outcomes[0].result == baseline[0].result

    def test_error_outcome_after_budget(self, tmp_path):
        tasks = [chaos_sweep_task("e", tmp_path, error_attempts=99)]
        outcomes = run_supervised_sweep(tasks, jobs=1, seed=0, max_task_retries=2)
        assert outcomes[0].status == TASK_ERROR
        assert outcomes[0].attempts == 3
        assert "ChaosError" in outcomes[0].error
        assert isinstance(outcomes[0].exception, ChaosError)

    def test_legacy_wrapper_reraises_original_exception(self, tmp_path):
        tasks = [chaos_sweep_task("e", tmp_path, error_attempts=99)]
        with pytest.raises(ChaosError, match="injected failure"):
            run_parallel_sweep(tasks, jobs=1, seed=0, max_task_retries=0)

    def test_pooled_error_retry(self, tmp_path):
        tasks = [chaos_sweep_task("e", tmp_path, error_attempts=1)] + [
            SweepTask(key=f"g{i}", fn=healthy_task) for i in range(2)
        ]
        outcomes = run_supervised_sweep(tasks, jobs=2, seed=4)
        assert all(o.ok for o in outcomes)
        assert outcomes[0].attempts == 2


class TestDeadlines:
    def test_timeout_outcome_without_stalling_siblings(self, tmp_path):
        """Acceptance: expiry marks `timeout`; siblings complete promptly."""
        tasks = [
            chaos_sweep_task("hang", tmp_path, hang_attempts=1, hang_seconds=120)
        ] + [SweepTask(key=f"h{i}", fn=healthy_task) for i in range(3)]
        start = time.monotonic()
        outcomes = run_supervised_sweep(tasks, jobs=2, seed=3, task_timeout=1.0)
        elapsed = time.monotonic() - start
        assert elapsed < 30  # nowhere near the 120s hang
        assert outcomes[0].status == TASK_TIMEOUT
        assert outcomes[0].attempts == 1  # deadline expiry is not retried
        assert "deadline" in outcomes[0].error
        assert all(o.ok for o in outcomes[1:])

    def test_timeout_does_not_change_sibling_results(self, tmp_path):
        keys = ["hang", "h0", "h1"]
        baseline = run_supervised_sweep(
            [SweepTask(key=k, fn=healthy_task) for k in keys], jobs=1, seed=13
        )
        tasks = [
            chaos_sweep_task("hang", tmp_path, hang_attempts=1, hang_seconds=120)
        ] + [SweepTask(key=k, fn=healthy_task) for k in keys[1:]]
        outcomes = run_supervised_sweep(tasks, jobs=2, seed=13, task_timeout=1.0)
        assert [o.result for o in outcomes[1:]] == [o.result for o in baseline[1:]]

    def test_serial_deadline_is_posthoc(self):
        """jobs=1 cannot pre-empt: the attempt runs, then expires."""

        outcomes = run_supervised_sweep(
            [SweepTask(key="s", fn=_sleepy_task, kwargs={"seconds": 0.1})],
            jobs=1,
            seed=0,
            task_timeout=0.01,
        )
        assert outcomes[0].status == TASK_TIMEOUT


def _sleepy_task(seed, *, seconds):
    time.sleep(seconds)
    return healthy_task(seed)


class TestInterrupt:
    def test_keyboard_interrupt_cancels_queued_futures(self, monkeypatch):
        """^C during collection shuts the pool down instead of leaking it."""
        from repro.experiments import supervisor as sup

        shutdown_calls = []
        real_shutdown = sup.ProcessPoolExecutor.shutdown

        def spy_shutdown(self, wait=True, *, cancel_futures=False):
            shutdown_calls.append({"wait": wait, "cancel_futures": cancel_futures})
            return real_shutdown(self, wait=wait, cancel_futures=cancel_futures)

        def interrupting_wait(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            sup.ProcessPoolExecutor, "shutdown", spy_shutdown
        )
        monkeypatch.setattr(sup, "futures_wait", interrupting_wait)
        with pytest.raises(KeyboardInterrupt):
            run_supervised_sweep(healthy_tasks(4), jobs=2, seed=0)
        assert shutdown_calls
        assert shutdown_calls[-1] == {"wait": False, "cancel_futures": True}


class TestSweepTaskCheckpoint:
    def _outcomes(self):
        return {
            "a": TaskOutcome(key="a", status=TASK_OK, result=[1.0], attempts=1),
            "b": TaskOutcome(key="b", status=TASK_ERROR, error="boom", attempts=3),
        }

    def test_round_trip(self, tmp_path):
        ck = SweepTaskCheckpoint(tmp_path / "tasks.json", "cfg")
        ck.save(self._outcomes())
        loaded = ck.load()
        assert loaded["a"].result == [1.0]
        assert loaded["b"].status == TASK_ERROR

    def test_config_key_mismatch_raises(self, tmp_path):
        ck = SweepTaskCheckpoint(tmp_path / "tasks.json", "cfg")
        ck.save(self._outcomes())
        with pytest.raises(ReproError, match="refusing to mix"):
            SweepTaskCheckpoint(tmp_path / "tasks.json", "other").load()

    def test_corrupt_file_quarantined(self, tmp_path):
        path = tmp_path / "tasks.json"
        path.write_text('{"truncated')
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert SweepTaskCheckpoint(path, "cfg").load() == {}
        assert (tmp_path / "tasks.json.corrupt").exists()

    def test_resume_skips_completed_tasks(self, tmp_path):
        """Acceptance: sweep-level resume does not rerun finished tasks."""
        state = tmp_path / "chaos"
        ck_path = tmp_path / "tasks.json"
        tasks = [
            chaos_sweep_task("fine", state),
            chaos_sweep_task("flaky", state, error_attempts=1),
        ]
        first = run_supervised_sweep(
            tasks, jobs=1, seed=6, max_task_retries=0,
            checkpoint=ck_path, config_key="cfg",
        )
        assert first[0].ok
        assert first[1].status == TASK_ERROR
        assert attempt_count(state, "fine") == 1

        resumed = run_supervised_sweep(
            tasks, jobs=1, seed=6, max_task_retries=0,
            checkpoint=ck_path, config_key="cfg", resume=True,
        )
        # `fine` was served from the checkpoint — no new attempt; the
        # failed task got a fresh chance and succeeded (error window: 1).
        assert attempt_count(state, "fine") == 1
        assert attempt_count(state, "flaky") == 2
        assert all(o.ok for o in resumed)
        # Resume reproduces the unfaulted sweep bit-for-bit.
        baseline = run_supervised_sweep(
            [SweepTask(key=t.key, fn=healthy_task) for t in tasks], jobs=1, seed=6
        )
        assert [o.result for o in resumed] == [o.result for o in baseline]

    def test_terminal_outcomes_flushed_incrementally(self, tmp_path):
        ck_path = tmp_path / "tasks.json"
        run_supervised_sweep(
            healthy_tasks(3), jobs=1, seed=0, checkpoint=ck_path, config_key="cfg"
        )
        payload = json.loads(ck_path.read_text())
        assert payload["config_key"] == "cfg"
        assert [t["key"] for t in payload["tasks"]] == ["t0", "t1", "t2"]


class TestObservability:
    def test_recovery_emits_exec_events_and_metrics(self, tmp_path):
        registry = MetricsRegistry()
        sink = MemoryTraceSink()
        tasks = [chaos_sweep_task("c", tmp_path, crash_attempts=1)] + [
            SweepTask(key=f"g{i}", fn=healthy_task) for i in range(2)
        ]
        with use_observer(Observer(registry, sink)):
            outcomes = run_supervised_sweep(tasks, jobs=2, seed=8)
        assert all(o.ok for o in outcomes)
        kinds = [e["kind"] for e in sink.events if e["kind"].startswith("exec-")]
        assert "exec-worker-crash" in kinds
        assert "exec-pool-rebuild" in kinds
        assert "exec-task-retry" in kinds
        for event in sink.events:
            if event["kind"].startswith("exec-"):
                validate_event(event)
        assert registry.counter_value("exec.worker_crashes") >= 1
        assert registry.counter_value("exec.pool_rebuilds") >= 1
        assert registry.counter_value("exec.task_retries") >= 1
        assert registry.counter_value("exec.tasks", label="ok") == 3
        wall = registry.histogram("exec.task_wall_s", label="ok")
        assert wall is not None and wall.count == 3

    def test_timeout_emits_exec_timeout_event(self, tmp_path):
        sink = MemoryTraceSink()
        tasks = [
            chaos_sweep_task("hang", tmp_path, hang_attempts=1, hang_seconds=120),
            SweepTask(key="g", fn=healthy_task),
        ]
        with use_observer(Observer(None, sink)):
            outcomes = run_supervised_sweep(
                tasks, jobs=2, seed=8, task_timeout=1.0
            )
        assert outcomes[0].status == TASK_TIMEOUT
        timeout_events = [
            e for e in sink.events if e["kind"] == "exec-task-timeout"
        ]
        assert timeout_events and timeout_events[0]["task"] == "hang"
        validate_event(timeout_events[0])

    def test_worker_spans_still_merge_under_supervision(self):
        registry = MetricsRegistry()
        with use_observer(Observer(registry)):
            run_supervised_sweep(healthy_tasks(3), jobs=2, seed=8)
        span_labels = {
            label
            for (name, label) in registry.histograms()
            if name == "span.sweep.task"
        }
        assert span_labels == {"t0", "t1", "t2"}

    def test_observed_and_unobserved_results_identical(self):
        plain = run_supervised_sweep(healthy_tasks(3), jobs=2, seed=8)
        with use_observer(Observer(MetricsRegistry(), MemoryTraceSink())):
            observed = run_supervised_sweep(healthy_tasks(3), jobs=2, seed=8)
        assert [o.result for o in plain] == [o.result for o in observed]
