"""Multi-host sweep fabric tests: recovery invariants under network chaos.

The contract under test is the one the supervisor established and the
fabric extends across machines: **no failure mode changes a single byte
of the results.**  Every test here compares a chaos-ridden distributed
sweep byte-for-byte against the serial (``jobs=1``) run — worker
crashes, network partitions, dropped / duplicated frames, coordinator
death and restart included.

Loopback workers are real ``repro worker`` subprocesses (spawned by the
coordinator), so an injected ``os._exit`` is a genuine worker death and
an injected partition a genuine silent socket — nothing is mocked.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import CoordinatorHalted, InvalidParameterError
from repro.experiments import run_fabric_sweep, run_supervised_sweep
from repro.experiments.chaos import (
    NetChaos,
    NetFault,
    attempt_count,
    chaos_task,
    load_net_chaos,
    save_net_chaos,
)
from repro.experiments.supervisor import TASK_OK, SweepTask, TaskOutcome
from repro.obs import MemoryTraceSink, MetricsRegistry, Observer, use_observer
from repro.obs.sinks import validate_event

#: Aggressive failure-detection knobs so chaos tests finish in seconds.
FAST = dict(heartbeat_interval=0.2, liveness_timeout=1.5, worker_wait=60.0)


def counted_tasks(count, state_dir, **overrides):
    """Sweep tasks whose executions are tallied in per-key counter files.

    Zero-injection :func:`chaos_task` is byte-identical to a healthy
    task but bumps its attempt counter on every execution — which is how
    the resume tests prove completed tasks were *not* re-executed.
    ``overrides`` maps a key to extra ``chaos_task`` kwargs.
    """
    tasks = []
    for i in range(count):
        key = f"t{i}"
        kwargs = {"key": key, "state_dir": str(state_dir), "draws": 3}
        kwargs.update(overrides.get(key, {}))
        tasks.append(SweepTask(key=key, fn=chaos_task, kwargs=kwargs))
    return tasks


def serial_reference(count, state_dir, seed):
    """The ``jobs=1`` comparator: same payloads, zero injections."""
    outcomes = run_supervised_sweep(
        counted_tasks(count, state_dir), jobs=1, seed=seed
    )
    return [o.result for o in outcomes]


class TestNetChaosSchedule:
    def test_action_validation(self):
        with pytest.raises(ValueError, match="unknown net-fault action"):
            NetFault(kind="task", action="explode")
        with pytest.raises(ValueError, match="invalid net-fault window"):
            NetFault(kind="task", action="drop", count=0)
        with pytest.raises(ValueError, match="invalid net-fault window"):
            NetFault(kind="task", action="delay", after=-1)

    def test_fires_by_occurrence_window(self, tmp_path):
        chaos = NetChaos(
            tmp_path, [NetFault(kind="task", action="drop", after=2, count=2)]
        )
        fired = [chaos.on_send("task") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_counters_survive_process_death(self, tmp_path):
        """A respawned worker resumes its schedule, not restarts it."""
        faults = [NetFault(kind="result", action="drop", after=1, count=1)]
        first = NetChaos(tmp_path, faults)
        assert first.on_send("result") is None
        # Simulate death: a brand-new NetChaos over the same state_dir
        # (what a respawned worker constructs) continues at occurrence 2.
        reborn = NetChaos(tmp_path, faults)
        assert reborn.on_send("result") is not None
        assert reborn.on_send("result") is None

    def test_spec_file_round_trip(self, tmp_path):
        faults = [
            NetFault(kind="*", action="delay", after=3, count=2, seconds=0.5),
            NetFault(kind="result", action="partition", seconds=1.0),
        ]
        spec = save_net_chaos(tmp_path / "spec.json", tmp_path / "state", faults)
        loaded = load_net_chaos(spec)
        assert loaded.faults == faults
        assert loaded.state_dir == tmp_path / "state"


class TestValidationAndEdges:
    def test_parameter_validation(self):
        task = counted_tasks(1, "/tmp/unused")
        with pytest.raises(InvalidParameterError):
            run_fabric_sweep(task, workers=-1)
        with pytest.raises(InvalidParameterError):
            run_fabric_sweep(task, max_task_retries=-1)
        with pytest.raises(InvalidParameterError):
            run_fabric_sweep(task, task_timeout=0.0)
        with pytest.raises(InvalidParameterError):
            run_fabric_sweep(task, heartbeat_interval=0.0)
        with pytest.raises(InvalidParameterError):
            run_fabric_sweep(task, degraded_jobs=0)
        with pytest.raises(InvalidParameterError):
            run_fabric_sweep(task, halt_after=0)

    def test_empty_tasks(self):
        assert run_fabric_sweep([], seed=0) == []

    def test_checkpoint_requires_unique_keys(self, tmp_path):
        tasks = counted_tasks(1, tmp_path) * 2
        with pytest.raises(InvalidParameterError, match="unique"):
            run_fabric_sweep(tasks, checkpoint=tmp_path / "c.json")

    def test_fully_resumed_sweep_never_listens(self, tmp_path, monkeypatch):
        """All tasks on record: return immediately, no socket, no workers."""
        ckpt = tmp_path / "c.json"
        tasks = counted_tasks(3, tmp_path / "exec")
        first = run_fabric_sweep(
            tasks, seed=5, worker_wait=0.2, checkpoint=ckpt, config_key="k"
        )
        assert all(o.ok for o in first)
        import socket as socket_module

        def explode(*args, **kwargs):  # any bind attempt fails the test
            raise AssertionError("fully-resumed sweep opened a socket")

        monkeypatch.setattr(socket_module.socket, "bind", explode)
        again = run_fabric_sweep(
            tasks, seed=5, checkpoint=ckpt, config_key="k", resume=True
        )
        assert [o.result for o in again] == [o.result for o in first]
        # Completed tasks were served from the checkpoint, not re-run.
        assert all(attempt_count(tmp_path / "exec", f"t{i}") == 1 for i in range(3))


class TestDegradedPath:
    """No workers ever join: the fabric must finish locally, identically."""

    def test_degrades_to_local_pool_byte_identical(self, tmp_path):
        reference = serial_reference(4, tmp_path / "serial", seed=42)
        sink = MemoryTraceSink()
        with use_observer(Observer(MetricsRegistry(), sink)):
            outcomes = run_fabric_sweep(
                counted_tasks(4, tmp_path / "fab"),
                seed=42,
                workers=0,
                worker_wait=0.3,
            )
        assert [o.result for o in outcomes] == reference
        assert all(o.status == TASK_OK and o.host == "local" for o in outcomes)
        kinds = [e["kind"] for e in sink.events]
        assert "fabric-degraded" in kinds and "fabric-end" in kinds
        degraded = next(e for e in sink.events if e["kind"] == "fabric-degraded")
        assert degraded["reason"] == "no-workers"
        assert degraded["remaining"] == 4
        for event in sink.events:
            validate_event(event)


@pytest.mark.usefixtures("tmp_path")
class TestLoopbackFabric:
    """Real spawned workers over loopback TCP — the distributed paths."""

    def test_healthy_sweep_byte_identical(self, tmp_path):
        reference = serial_reference(6, tmp_path / "serial", seed=42)
        outcomes = run_fabric_sweep(
            counted_tasks(6, tmp_path / "fab"), seed=42, workers=2, **FAST
        )
        assert [o.result for o in outcomes] == reference
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        # Executed on workers, not degraded: host is a worker identity.
        assert all(o.host not in ("", "local") for o in outcomes)

    def test_authenticated_sweep_byte_identical(self, tmp_path, monkeypatch):
        """With ``REPRO_FABRIC_SECRET`` in the environment, every frame
        both ways carries an HMAC tag — spawned workers inherit the
        secret and the sweep is byte-identical to the serial run."""
        from repro.experiments.wire import FABRIC_SECRET_ENV

        monkeypatch.setenv(FABRIC_SECRET_ENV, "lab-segment-secret")
        reference = serial_reference(6, tmp_path / "serial", seed=42)
        outcomes = run_fabric_sweep(
            counted_tasks(6, tmp_path / "fab"), seed=42, workers=2, **FAST
        )
        assert [o.result for o in outcomes] == reference
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert all(o.host not in ("", "local") for o in outcomes)

    def test_worker_crash_mid_task_recovers(self, tmp_path):
        """``os._exit`` in a worker is a lost lease: charged, requeued,
        retried on the original child seed — results unchanged."""
        reference = serial_reference(6, tmp_path / "serial", seed=7)
        sink = MemoryTraceSink()
        with use_observer(Observer(MetricsRegistry(), sink)):
            outcomes = run_fabric_sweep(
                counted_tasks(
                    6, tmp_path / "fab", t2={"crash_attempts": 1}
                ),
                seed=7,
                workers=2,
                **FAST,
            )
        assert [o.result for o in outcomes] == reference
        crashed = outcomes[2]
        assert crashed.ok
        assert crashed.lost_leases >= 1
        assert crashed.requeued >= 1
        assert crashed.attempts == 2
        kinds = [e["kind"] for e in sink.events]
        assert "fabric-worker-lost" in kinds
        assert "fabric-task-requeue" in kinds
        for event in sink.events:
            validate_event(event)

    def test_dropped_task_frame_requeued_uncharged(self, tmp_path):
        """A ``task`` frame the network ate never acks; the lease is
        revoked and the attempt refunded — nothing ever ran."""
        reference = serial_reference(6, tmp_path / "serial", seed=3)
        chaos = NetChaos(
            tmp_path / "coord",
            [NetFault(kind="task", action="drop", after=1, count=1)],
        )
        sink = MemoryTraceSink()
        with use_observer(Observer(MetricsRegistry(), sink)):
            outcomes = run_fabric_sweep(
                counted_tasks(6, tmp_path / "fab"),
                seed=3,
                workers=2,
                ack_timeout=0.6,
                net_chaos=chaos,
                **FAST,
            )
        assert [o.result for o in outcomes] == reference
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        reasons = [
            e["reason"] for e in sink.events if e["kind"] == "fabric-task-requeue"
        ]
        assert "undelivered" in reasons

    def test_duplicated_task_frame_executes_once(self, tmp_path):
        """Chaos duplicates an assignment; the worker answers the second
        copy from its result cache and the coordinator discards the
        duplicate result idempotently."""
        reference = serial_reference(6, tmp_path / "serial", seed=3)
        chaos = NetChaos(
            tmp_path / "coord",
            [NetFault(kind="task", action="duplicate", after=2, count=1)],
        )
        sink = MemoryTraceSink()
        with use_observer(Observer(MetricsRegistry(), sink)):
            outcomes = run_fabric_sweep(
                counted_tasks(6, tmp_path / "fab"),
                seed=3,
                workers=2,
                net_chaos=chaos,
                **FAST,
            )
        assert [o.result for o in outcomes] == reference
        kinds = [e["kind"] for e in sink.events]
        assert "fabric-duplicate-result" in kinds
        # The duplicated assignment was answered from cache, not re-run.
        assert all(
            attempt_count(tmp_path / "fab", f"t{i}") == 1 for i in range(6)
        )

    def test_dropped_result_recovered_by_lease_retransmit(self, tmp_path):
        """A lost ``result`` frame is recovered without re-execution: the
        quiet lease is retransmitted and the worker answers from cache."""
        reference = serial_reference(4, tmp_path / "serial", seed=9)
        spec = save_net_chaos(
            tmp_path / "w0.json",
            tmp_path / "w0-state",
            [NetFault(kind="result", action="drop", after=0, count=1)],
        )
        registry = MetricsRegistry()
        with use_observer(Observer(registry, None)):
            outcomes = run_fabric_sweep(
                counted_tasks(4, tmp_path / "fab"),
                seed=9,
                workers=1,
                lease_timeout=0.8,
                worker_chaos=[spec],
                **FAST,
            )
        assert [o.result for o in outcomes] == reference
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert registry.counter_value("fabric.lease_resends") >= 1
        assert all(
            attempt_count(tmp_path / "fab", f"t{i}") == 1 for i in range(4)
        )

    def test_partitioned_worker_leases_revoked(self, tmp_path):
        """A partition window mutes heartbeats too; the coordinator
        declares the worker lost and requeues its leases.

        The partition triggers on worker 0's *first* result send — a
        later trigger is racy: with tiny tasks the other worker can
        drain the queue before worker 0 earns a second lease, and the
        fault would never fire.
        """
        reference = serial_reference(8, tmp_path / "serial", seed=11)
        spec = save_net_chaos(
            tmp_path / "w0.json",
            tmp_path / "w0-state",
            [
                NetFault(
                    kind="result", action="partition", after=0, count=1,
                    seconds=3.0,
                )
            ],
        )
        sink = MemoryTraceSink()
        with use_observer(Observer(MetricsRegistry(), sink)):
            outcomes = run_fabric_sweep(
                counted_tasks(8, tmp_path / "fab"),
                seed=11,
                workers=2,
                worker_chaos=[spec, None],
                **FAST,
            )
        assert [o.result for o in outcomes] == reference
        assert all(o.ok for o in outcomes)
        lost = [e for e in sink.events if e["kind"] == "fabric-worker-lost"]
        assert any(e["reason"] == "partition" for e in lost)

    def test_work_stealing_beats_straggler(self, tmp_path):
        """With the queue dry, an idle worker runs a speculative twin of
        the straggler; first result wins, accounting stays clean."""
        reference = serial_reference(3, tmp_path / "serial", seed=21)
        sink = MemoryTraceSink()
        start = time.perf_counter()
        with use_observer(Observer(MetricsRegistry(), sink)):
            outcomes = run_fabric_sweep(
                counted_tasks(
                    3,
                    tmp_path / "fab",
                    t0={"hang_attempts": 1, "hang_seconds": 20.0},
                ),
                seed=21,
                workers=2,
                work_stealing=True,
                steal_after=0.5,
                **FAST,
            )
        elapsed = time.perf_counter() - start
        assert [o.result for o in outcomes] == reference
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert any(e["kind"] == "fabric-task-steal" for e in sink.events)
        # The twin finished the sweep; nobody waited out the 20s straggler.
        assert elapsed < 15.0

    def test_task_timeout_is_terminal(self, tmp_path):
        """PR 5 parity: a deadline expiry is a terminal timeout outcome,
        and the sweep's siblings are unharmed."""
        outcomes = run_fabric_sweep(
            counted_tasks(
                3,
                tmp_path / "fab",
                t1={"hang_attempts": 9, "hang_seconds": 60.0},
            ),
            seed=2,
            workers=2,
            task_timeout=1.5,
            max_worker_respawns=2,
            **FAST,
        )
        assert outcomes[0].ok and outcomes[2].ok
        assert outcomes[1].status == "timeout"
        assert "deadline" in outcomes[1].error


class TestCoordinatorRestart:
    """Coordinator death and resume: the checkpoint is the contract."""

    def test_halt_then_resume_without_double_execution(self, tmp_path):
        """Kill the coordinator after 3 outcomes; the atomic checkpoint
        write means the resumed run skips exactly the completed tasks —
        none of them execute a second time."""
        reference = serial_reference(8, tmp_path / "serial", seed=13)
        ckpt = tmp_path / "ckpt.json"
        with pytest.raises(CoordinatorHalted) as excinfo:
            run_fabric_sweep(
                counted_tasks(8, tmp_path / "fab"),
                seed=13,
                workers=2,
                checkpoint=ckpt,
                config_key="restart-demo",
                halt_after=3,
                **FAST,
            )
        assert excinfo.value.completed >= 3
        # The atomic tmp-then-replace save means the file on disk is a
        # complete, valid snapshot even though the coordinator died.
        on_disk = json.loads(ckpt.read_text())
        completed_keys = {entry["key"] for entry in on_disk["tasks"]}
        assert len(completed_keys) >= 3
        outcomes = run_fabric_sweep(
            counted_tasks(8, tmp_path / "fab"),
            seed=13,
            workers=2,
            checkpoint=ckpt,
            config_key="restart-demo",
            resume=True,
            **FAST,
        )
        assert [o.result for o in outcomes] == reference
        assert all(o.ok for o in outcomes)
        # Tasks checkpointed before the halt ran exactly once in total.
        for key in completed_keys:
            assert attempt_count(tmp_path / "fab", key) == 1

    def test_corrupt_checkpoint_quarantined_and_rerun(self, tmp_path):
        """A checkpoint torn by a crash mid-write is quarantined (not
        trusted, not fatal) and the sweep simply re-runs in full."""
        reference = serial_reference(4, tmp_path / "serial", seed=17)
        ckpt = tmp_path / "ckpt.json"
        with pytest.raises(CoordinatorHalted):
            run_fabric_sweep(
                counted_tasks(4, tmp_path / "fab"),
                seed=17,
                workers=2,
                checkpoint=ckpt,
                config_key="corrupt-demo",
                halt_after=2,
                **FAST,
            )
        ckpt.write_text('{"config_key": "corrupt-demo", "tasks": [TORN')
        with pytest.warns(RuntimeWarning, match="quarantined"):
            outcomes = run_fabric_sweep(
                counted_tasks(4, tmp_path / "fab2"),
                seed=17,
                workers=2,
                checkpoint=ckpt,
                config_key="corrupt-demo",
                resume=True,
                **FAST,
            )
        assert [o.result for o in outcomes] == reference
        assert all(o.ok for o in outcomes)
        assert ckpt.with_suffix(".json.corrupt").exists()


class TestWorkerInterrupt:
    """SIGINT to a worker releases its lease before the process exits."""

    def test_sigint_sends_goodbye_and_lease_is_refunded(self, tmp_path):
        import repro

        reference = serial_reference(3, tmp_path / "serial", seed=31)
        state = tmp_path / "fab"
        tasks = counted_tasks(
            3, state, t0={"hang_attempts": 1, "hang_seconds": 30.0}
        )
        # Pre-pick a port so the test can dial its own worker at it.
        import socket as socket_module

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        sink = MemoryTraceSink()
        results = {}

        def coordinate():
            with use_observer(Observer(MetricsRegistry(), sink)):
                results["outcomes"] = run_fabric_sweep(
                    tasks,
                    seed=31,
                    listen=f"127.0.0.1:{port}",
                    workers=0,
                    heartbeat_interval=0.2,
                    liveness_timeout=2.0,
                    worker_wait=2.0,
                )

        thread = threading.Thread(target=coordinate)
        thread.start()
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(repro.__file__).resolve().parents[1])
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--connect",
                f"127.0.0.1:{port}",
                "--heartbeat",
                "0.2",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until the worker is executing the straggler, then ^C it.
            deadline = time.monotonic() + 30.0
            while (
                attempt_count(state, "t0") < 1 and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert attempt_count(state, "t0") >= 1, "worker never started t0"
            time.sleep(0.3)
            worker.send_signal(signal.SIGINT)
            assert worker.wait(timeout=15.0) == 130
        finally:
            if worker.poll() is None:  # pragma: no cover - cleanup only
                worker.kill()
            thread.join(timeout=120.0)
        assert not thread.is_alive()
        outcomes = results["outcomes"]
        assert [o.result for o in outcomes] == reference
        # The goodbye refunded the attempt: the interrupted task finished
        # on the degraded local pool with clean accounting.
        interrupted = outcomes[0]
        assert interrupted.ok
        assert interrupted.requeued >= 1
        assert interrupted.lost_leases == 0
        reasons = [
            e["reason"] for e in sink.events if e["kind"] == "fabric-task-requeue"
        ]
        assert "goodbye" in reasons


class TestAcceptance:
    """The ISSUE's acceptance bar, in one sweep: >= 2 workers under a
    scheduled worker crash, a network partition and one coordinator
    restart — byte-identical to serial, every task a structured outcome."""

    def test_chaos_ridden_fabric_matches_serial(self, tmp_path):
        count = 10
        reference = serial_reference(count, tmp_path / "serial", seed=101)
        state = tmp_path / "fab"
        ckpt = tmp_path / "ckpt.json"
        # Worker 0 partitions for 2.5s after its second result; task t4
        # crashes whichever worker runs it first.
        spec = save_net_chaos(
            tmp_path / "w0.json",
            tmp_path / "w0-state",
            [
                NetFault(
                    kind="result", action="partition", after=2, count=1,
                    seconds=2.5,
                )
            ],
        )
        kwargs = dict(
            seed=101,
            workers=2,
            checkpoint=ckpt,
            config_key="acceptance",
            worker_chaos=[spec, None],
            **FAST,
        )
        tasks = counted_tasks(count, state, t4={"crash_attempts": 1})
        with pytest.raises(CoordinatorHalted):
            run_fabric_sweep(tasks, halt_after=4, **kwargs)
        # One coordinator restart, resuming from the flushed checkpoint.
        outcomes = run_fabric_sweep(tasks, resume=True, **kwargs)

        assert [o.result for o in outcomes] == reference
        assert [o.key for o in outcomes] == [f"t{i}" for i in range(count)]
        for outcome in outcomes:
            assert isinstance(outcome, TaskOutcome)
            assert outcome.status == TASK_OK
            assert outcome.attempts >= 1
        # The crash surfaced in the accounting, not in the results: t4
        # crashed exactly once (only attempt 1 is scheduled to crash)
        # and then re-executed successfully.  How many executions the
        # counter shows races with the halt: the crash and rerun may
        # land either side of the restart, and a rerun completing after
        # halt_after fires is lost with the unflushed checkpoint and
        # legitimately re-executed on resume — so 2 or 3 total, never 1
        # (an unsurfaced crash) and never more (a re-run of
        # checkpointed work).
        assert 2 <= attempt_count(state, "t4") <= 3
        if outcomes[4].attempts == 2:
            assert outcomes[4].lost_leases >= 1
