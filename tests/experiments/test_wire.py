"""Wire-protocol tests: framing, channels, and send-side fault injection."""

import socket

import pytest

from repro.experiments.chaos import NetChaos, NetFault
from repro.experiments.wire import (
    MAX_FRAME_BYTES,
    MSG_HEARTBEAT,
    MSG_RESULT,
    FrameDecoder,
    FramedChannel,
    encode_frame,
    format_address,
    parse_address,
)


class TestFraming:
    def test_round_trip(self):
        message = {"kind": MSG_RESULT, "index": 3, "result": [1.5, 2.5]}
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(message)) == [message]

    def test_byte_dribble_reassembles(self):
        """A frame fed one byte at a time still comes out whole."""
        message = {"kind": "task", "payload": "x" * 100}
        frame = encode_frame(message)
        decoder = FrameDecoder()
        out = []
        for i in range(len(frame)):
            out.extend(decoder.feed(frame[i : i + 1]))
        assert out == [message]

    def test_multiple_frames_in_one_chunk(self):
        messages = [{"kind": "a", "i": i} for i in range(5)]
        chunk = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(chunk) == messages

    def test_oversized_length_prefix_rejected(self):
        import struct

        decoder = FrameDecoder()
        with pytest.raises(ValueError, match="MAX_FRAME_BYTES"):
            decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))


class TestAddress:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("10.0.0.2:7777", ("10.0.0.2", 7777)),
            (":7777", ("127.0.0.1", 7777)),
            ("7777", ("127.0.0.1", 7777)),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_address(text) == expected

    @pytest.mark.parametrize("text", ["host:notaport", "host:", "", "1:99999"])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            parse_address(text)

    def test_format_inverts_parse(self):
        assert parse_address(format_address("10.0.0.2", 80)) == ("10.0.0.2", 80)


def _pair():
    left, right = socket.socketpair()
    return FramedChannel(left), FramedChannel(right)


class TestFramedChannel:
    def test_send_recv_round_trip(self):
        a, b = _pair()
        try:
            assert a.send({"kind": MSG_HEARTBEAT})
            assert a.send({"kind": MSG_RESULT, "index": 0})
            assert b.recv() == {"kind": MSG_HEARTBEAT}
            assert b.recv() == {"kind": MSG_RESULT, "index": 0}
        finally:
            a.close()
            b.close()

    def test_recv_none_on_eof(self):
        a, b = _pair()
        a.close()
        try:
            assert b.recv() is None
        finally:
            b.close()

    def test_chaos_drop_swallows_message(self, tmp_path):
        left, right = socket.socketpair()
        chaos = NetChaos(tmp_path, [NetFault(kind="result", action="drop")])
        a = FramedChannel(left, chaos=chaos)
        b = FramedChannel(right)
        try:
            assert not a.send({"kind": "result", "index": 0})  # dropped
            assert a.send({"kind": "result", "index": 1})  # window passed
            assert b.recv() == {"kind": "result", "index": 1}
        finally:
            a.close()
            b.close()

    def test_chaos_duplicate_writes_twice(self, tmp_path):
        left, right = socket.socketpair()
        chaos = NetChaos(tmp_path, [NetFault(kind="task", action="duplicate")])
        a = FramedChannel(left, chaos=chaos)
        b = FramedChannel(right)
        try:
            assert a.send({"kind": "task", "index": 7})
            assert b.recv() == {"kind": "task", "index": 7}
            assert b.recv() == {"kind": "task", "index": 7}
        finally:
            a.close()
            b.close()

    def test_chaos_partition_mutes_everything(self, tmp_path):
        """During the outage window every kind is discarded, then service
        resumes — the liveness detector on the other side is what must
        notice, not the sender."""
        left, right = socket.socketpair()
        chaos = NetChaos(
            tmp_path,
            [NetFault(kind="result", action="partition", seconds=0.2)],
        )
        a = FramedChannel(left, chaos=chaos)
        b = FramedChannel(right)
        try:
            assert not a.send({"kind": "result", "index": 0})  # opens window
            assert not a.send({"kind": "heartbeat"})  # muted too
            import time

            time.sleep(0.25)
            assert a.send({"kind": "heartbeat"})  # window over
            assert b.recv() == {"kind": "heartbeat"}
        finally:
            a.close()
            b.close()

    def test_chaos_only_consults_matching_kind(self, tmp_path):
        left, right = socket.socketpair()
        chaos = NetChaos(tmp_path, [NetFault(kind="result", action="drop")])
        a = FramedChannel(left, chaos=chaos)
        b = FramedChannel(right)
        try:
            assert a.send({"kind": "heartbeat"})  # different kind: untouched
            assert b.recv() == {"kind": "heartbeat"}
        finally:
            a.close()
            b.close()
