"""Wire-protocol tests: framing, channels, and send-side fault injection."""

import socket

import pytest

from repro.experiments.chaos import NetChaos, NetFault
from repro.experiments.wire import (
    FABRIC_SECRET_ENV,
    MAX_FRAME_BYTES,
    MSG_HEARTBEAT,
    MSG_RESULT,
    FrameDecoder,
    FramedChannel,
    encode_frame,
    fabric_secret,
    format_address,
    parse_address,
)


class TestFraming:
    def test_round_trip(self):
        message = {"kind": MSG_RESULT, "index": 3, "result": [1.5, 2.5]}
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(message)) == [message]

    def test_byte_dribble_reassembles(self):
        """A frame fed one byte at a time still comes out whole."""
        message = {"kind": "task", "payload": "x" * 100}
        frame = encode_frame(message)
        decoder = FrameDecoder()
        out = []
        for i in range(len(frame)):
            out.extend(decoder.feed(frame[i : i + 1]))
        assert out == [message]

    def test_multiple_frames_in_one_chunk(self):
        messages = [{"kind": "a", "i": i} for i in range(5)]
        chunk = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(chunk) == messages

    def test_oversized_length_prefix_rejected(self):
        import struct

        decoder = FrameDecoder()
        with pytest.raises(ValueError, match="MAX_FRAME_BYTES"):
            decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_undecodable_payload_normalised_to_value_error(self):
        import struct

        decoder = FrameDecoder()
        with pytest.raises(ValueError, match="undecodable frame"):
            decoder.feed(struct.pack(">I", 4) + b"\x00ohno"[:4])


class TestAuthentication:
    def test_tagged_round_trip(self):
        message = {"kind": MSG_RESULT, "index": 3}
        decoder = FrameDecoder(secret="hunter2")
        frame = encode_frame(message, secret="hunter2")
        assert decoder.feed(frame) == [message]
        # The tag really is on the wire: authenticated frames are one
        # HMAC-SHA256 digest longer than plain ones.
        assert len(frame) == len(encode_frame(message, secret=None)) + 32

    def test_mismatched_secret_rejected(self):
        frame = encode_frame({"kind": "task"}, secret="right")
        decoder = FrameDecoder(secret="wrong")
        with pytest.raises(ValueError, match="auth tag mismatch"):
            decoder.feed(frame)

    def test_untagged_frame_rejected_by_authenticated_peer(self):
        frame = encode_frame({"k": 1}, secret=None)
        decoder = FrameDecoder(secret="hunter2")
        # A short plain frame cannot even hold a tag; a longer one fails
        # the tag check.  Both normalise to ValueError.
        with pytest.raises(ValueError):
            decoder.feed(frame)

    def test_tagged_frame_rejected_by_plain_peer(self):
        frame = encode_frame({"kind": "task"}, secret="hunter2")
        decoder = FrameDecoder(secret=None)
        with pytest.raises(ValueError, match="undecodable frame"):
            decoder.feed(frame)

    def test_secret_defaults_to_environment(self, monkeypatch):
        monkeypatch.setenv(FABRIC_SECRET_ENV, "lab-segment")
        assert fabric_secret() == b"lab-segment"
        message = {"kind": MSG_HEARTBEAT}
        assert FrameDecoder().feed(encode_frame(message)) == [message]
        with pytest.raises(ValueError, match="auth tag mismatch"):
            FrameDecoder(secret="other").feed(encode_frame(message))
        monkeypatch.setenv(FABRIC_SECRET_ENV, "")
        assert fabric_secret() is None

    def test_authenticated_channel_pair(self, monkeypatch):
        monkeypatch.setenv(FABRIC_SECRET_ENV, "lab-segment")
        left, right = socket.socketpair()
        a, b = FramedChannel(left), FramedChannel(right)
        try:
            assert a.send({"kind": MSG_RESULT, "index": 9})
            assert b.recv() == {"kind": MSG_RESULT, "index": 9}
        finally:
            a.close()
            b.close()

    def test_secret_mismatch_across_channel_drops(self):
        left, right = socket.socketpair()
        a = FramedChannel(left, secret="alpha")
        b = FramedChannel(right, secret="beta")
        try:
            assert a.send({"kind": MSG_HEARTBEAT})
            with pytest.raises(ValueError, match="auth tag mismatch"):
                b.recv()
        finally:
            a.close()
            b.close()


class TestAddress:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("10.0.0.2:7777", ("10.0.0.2", 7777)),
            (":7777", ("127.0.0.1", 7777)),
            ("7777", ("127.0.0.1", 7777)),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_address(text) == expected

    @pytest.mark.parametrize("text", ["host:notaport", "host:", "", "1:99999"])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            parse_address(text)

    def test_format_inverts_parse(self):
        assert parse_address(format_address("10.0.0.2", 80)) == ("10.0.0.2", 80)


def _pair():
    left, right = socket.socketpair()
    return FramedChannel(left), FramedChannel(right)


class TestFramedChannel:
    def test_send_recv_round_trip(self):
        a, b = _pair()
        try:
            assert a.send({"kind": MSG_HEARTBEAT})
            assert a.send({"kind": MSG_RESULT, "index": 0})
            assert b.recv() == {"kind": MSG_HEARTBEAT}
            assert b.recv() == {"kind": MSG_RESULT, "index": 0}
        finally:
            a.close()
            b.close()

    def test_recv_none_on_eof(self):
        a, b = _pair()
        a.close()
        try:
            assert b.recv() is None
        finally:
            b.close()

    def test_chaos_drop_swallows_message(self, tmp_path):
        left, right = socket.socketpair()
        chaos = NetChaos(tmp_path, [NetFault(kind="result", action="drop")])
        a = FramedChannel(left, chaos=chaos)
        b = FramedChannel(right)
        try:
            assert not a.send({"kind": "result", "index": 0})  # dropped
            assert a.send({"kind": "result", "index": 1})  # window passed
            assert b.recv() == {"kind": "result", "index": 1}
        finally:
            a.close()
            b.close()

    def test_chaos_duplicate_writes_twice(self, tmp_path):
        left, right = socket.socketpair()
        chaos = NetChaos(tmp_path, [NetFault(kind="task", action="duplicate")])
        a = FramedChannel(left, chaos=chaos)
        b = FramedChannel(right)
        try:
            assert a.send({"kind": "task", "index": 7})
            assert b.recv() == {"kind": "task", "index": 7}
            assert b.recv() == {"kind": "task", "index": 7}
        finally:
            a.close()
            b.close()

    def test_chaos_partition_mutes_everything(self, tmp_path):
        """During the outage window every kind is discarded, then service
        resumes — the liveness detector on the other side is what must
        notice, not the sender."""
        left, right = socket.socketpair()
        chaos = NetChaos(
            tmp_path,
            [NetFault(kind="result", action="partition", seconds=0.2)],
        )
        a = FramedChannel(left, chaos=chaos)
        b = FramedChannel(right)
        try:
            assert not a.send({"kind": "result", "index": 0})  # opens window
            assert not a.send({"kind": "heartbeat"})  # muted too
            import time

            time.sleep(0.25)
            assert a.send({"kind": "heartbeat"})  # window over
            assert b.recv() == {"kind": "heartbeat"}
        finally:
            a.close()
            b.close()

    def test_chaos_only_consults_matching_kind(self, tmp_path):
        left, right = socket.socketpair()
        chaos = NetChaos(tmp_path, [NetFault(kind="result", action="drop")])
        a = FramedChannel(left, chaos=chaos)
        b = FramedChannel(right)
        try:
            assert a.send({"kind": "heartbeat"})  # different kind: untouched
            assert b.recv() == {"kind": "heartbeat"}
        finally:
            a.close()
            b.close()
