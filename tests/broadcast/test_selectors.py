"""Unit tests for selective families and the family-driven protocol."""

import numpy as np
import pytest

from repro.broadcast.selectors import (
    SelectiveFamilyProtocol,
    find_violating_subset,
    random_selective_family,
    verify_selective,
)
from repro.errors import InvalidParameterError
from repro.graphs import balanced_tree, cycle_graph, gnp_connected, path_graph
from repro.radio import RadioNetwork, simulate_broadcast


class TestConstruction:
    def test_k1_is_single_full_set(self):
        fam = random_selective_family(10, 1, seed=0)
        assert len(fam) == 1
        assert list(fam[0]) == list(range(10))

    def test_every_element_covered(self):
        fam = random_selective_family(50, 5, seed=1)
        covered = np.zeros(50, dtype=bool)
        for t in fam:
            covered[t] = True
        assert np.all(covered)

    def test_family_size_scales(self):
        small = random_selective_family(64, 2, seed=2)
        large = random_selective_family(64, 8, seed=2)
        assert len(large) > len(small)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            random_selective_family(0, 1)
        with pytest.raises(InvalidParameterError):
            random_selective_family(10, 0)
        with pytest.raises(InvalidParameterError):
            random_selective_family(10, 11)
        with pytest.raises(InvalidParameterError):
            random_selective_family(10, 2, size_factor=0)


class TestVerification:
    @pytest.mark.parametrize("n,k", [(12, 2), (16, 3), (20, 2)])
    def test_certified_family_is_selective_exhaustive(self, n, k):
        # Small enough for exhaustive verification; certified mode must be
        # exactly selective (the raw construction is only w.h.p.).
        fam = random_selective_family(n, k, seed=3, certified=True)
        assert verify_selective(fam, n, k)

    def test_detects_non_selective_family(self):
        # Family {T} with T = [0, n): any |S| = 2 subset intersects in 2.
        fam = [np.arange(8, dtype=np.int64)]
        witness = find_violating_subset(fam, 8, 2)
        assert witness is not None
        assert witness.size == 2

    def test_singleton_family_selects_singletons(self):
        fam = [np.array([v]) for v in range(6)]
        assert verify_selective(fam, 6, 1)

    def test_monte_carlo_path(self):
        # Large (n, k): forces the sampling branch.
        fam = random_selective_family(300, 6, seed=4)
        assert verify_selective(fam, 300, 6, samples=500, seed=5)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            find_violating_subset([], 0, 1)


class TestProtocol:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SelectiveFamilyProtocol(0, [np.array([0])])
        with pytest.raises(InvalidParameterError):
            SelectiveFamilyProtocol(5, [])
        with pytest.raises(InvalidParameterError):
            SelectiveFamilyProtocol(5, [np.array([7])])
        with pytest.raises(InvalidParameterError):
            SelectiveFamilyProtocol(5, [np.array([0])]).prepare(6, None, 0)

    def test_cycles_through_family(self, rng):
        fam = [np.array([0]), np.array([1, 2])]
        proto = SelectiveFamilyProtocol(4, fam)
        assert proto.cycle_length == 2
        informed = np.ones(4, dtype=bool)
        ir = np.zeros(4, dtype=np.int64)
        m1 = proto.transmit_mask(1, informed, ir, rng)
        m2 = proto.transmit_mask(2, informed, ir, rng)
        m3 = proto.transmit_mask(3, informed, ir, rng)
        assert list(np.flatnonzero(m1)) == [0]
        assert sorted(np.flatnonzero(m2)) == [1, 2]
        assert np.array_equal(m1, m3)

    def test_deterministic_broadcast_on_bounded_degree(self):
        # Max degree 2 (cycle): a 2-selective family must complete.
        g = cycle_graph(20)
        fam = random_selective_family(20, 3, seed=6)
        assert verify_selective(fam, 20, 3)
        proto = SelectiveFamilyProtocol(20, fam)
        trace = simulate_broadcast(
            RadioNetwork(g), proto, 0, seed=0,
            max_rounds=len(fam) * 30,
        )
        assert trace.completed

    def test_completes_on_tree(self):
        g = balanced_tree(3, 3)  # max degree 4
        n = g.n
        fam = random_selective_family(n, 5, seed=7)
        proto = SelectiveFamilyProtocol(n, fam)
        trace = simulate_broadcast(
            RadioNetwork(g), proto, 0, seed=0, max_rounds=len(fam) * 40
        )
        assert trace.completed

    def test_deterministic_trace(self):
        g = path_graph(12)
        fam = random_selective_family(12, 3, seed=8)
        proto = SelectiveFamilyProtocol(12, fam)
        a = simulate_broadcast(RadioNetwork(g), proto, 0, seed=1, max_rounds=2000)
        b = simulate_broadcast(RadioNetwork(g), proto, 0, seed=77, max_rounds=2000)
        assert a.completion_round == b.completion_round

    def test_slower_than_randomized_on_gnp(self):
        import math

        n = 256
        p = 4 * math.log(n) / n
        g = gnp_connected(n, p, seed=9)
        net = RadioNetwork(g)
        d = int(p * n)
        fam = random_selective_family(n, 2 * d, seed=10)
        det = simulate_broadcast(
            net, SelectiveFamilyProtocol(n, fam), 0, seed=0,
            max_rounds=len(fam) * 50,
        ).completion_round
        from repro.broadcast.distributed import EGRandomizedProtocol

        rand = simulate_broadcast(
            net, EGRandomizedProtocol(n, p), 0, seed=0, p=p
        ).completion_round
        assert det > rand

    def test_repr(self):
        assert "cycle" in repr(SelectiveFamilyProtocol(5, [np.array([0])]))
