"""Unit tests for the distributed protocols (Theorem 7 + baselines)."""

import math

import numpy as np
import pytest

from repro.broadcast.distributed import (
    DecayProtocol,
    EGRandomizedProtocol,
    ObliviousProtocol,
    UniformProtocol,
)
from repro.errors import InvalidParameterError
from repro.graphs import gnp_connected, hypercube
from repro.radio import RadioNetwork, repeat_broadcast, simulate_broadcast
from repro.theory.bounds import distributed_bound


class TestEGRandomized:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            EGRandomizedProtocol(1, 0.5)
        with pytest.raises(InvalidParameterError):
            EGRandomizedProtocol(100, 0.0)
        with pytest.raises(InvalidParameterError):
            EGRandomizedProtocol(100, 1.5)
        with pytest.raises(InvalidParameterError):
            EGRandomizedProtocol(100, 0.005)  # d = 0.5 <= 1
        with pytest.raises(InvalidParameterError):
            EGRandomizedProtocol(100, 0.2, selectivity=0)

    def test_switch_round_formula(self):
        proto = EGRandomizedProtocol(1000, 0.01)  # d = 10
        assert proto.switch_round == math.ceil(math.log(1000) / math.log(10))
        assert 0 < proto.switch_probability <= 1
        assert proto.selective_probability == pytest.approx(0.1)

    def test_probability_schedule(self):
        proto = EGRandomizedProtocol(1000, 0.01)
        D = proto.switch_round
        for t in range(1, D):
            assert proto.probability_at(t) == 1.0
        assert proto.probability_at(D) == proto.switch_probability
        assert proto.probability_at(D + 1) == proto.selective_probability
        assert proto.probability_at(D + 100) == proto.selective_probability
        with pytest.raises(InvalidParameterError):
            proto.probability_at(0)

    def test_prepare_checks_n(self):
        proto = EGRandomizedProtocol(100, 0.1)
        with pytest.raises(InvalidParameterError, match="configured for"):
            proto.prepare(99, 0.1, 0)

    def test_completes_on_gnp(self, gnp_medium):
        n = gnp_medium.n
        p = 0.04
        trace = simulate_broadcast(
            RadioNetwork(gnp_medium), EGRandomizedProtocol(n, p), seed=0, p=p
        )
        assert trace.completed

    def test_time_order_ln_n(self):
        # The headline claim at one size: completes within a small
        # multiple of ln n on a supercritical G(n, p).
        n = 1024
        p = 4 * math.log(n) / n
        g = gnp_connected(n, p, seed=20)
        times = repeat_broadcast(
            RadioNetwork(g), EGRandomizedProtocol(n, p), repetitions=5, seed=1
        )
        assert np.max(times) < 8 * distributed_bound(n)

    def test_strict_participation_mode(self):
        n = 512
        p = 5 * math.log(n) / n
        g = gnp_connected(n, p, seed=21)
        proto = EGRandomizedProtocol(n, p, strict_participation=True)
        trace = simulate_broadcast(
            RadioNetwork(g), proto, seed=2, p=p, max_rounds=2000
        )
        assert trace.completed

    def test_strict_mode_masks_late_informed(self, rng):
        proto = EGRandomizedProtocol(100, 0.2, strict_participation=True)
        D = proto.switch_round
        informed = np.ones(100, dtype=bool)
        informed_round = np.full(100, D + 5, dtype=np.int64)  # all late
        informed_round[:10] = 0  # ten early nodes
        mask = proto.transmit_mask(D + 6, informed, informed_round, rng)
        assert not np.any(mask[10:])

    def test_repr(self):
        assert "switch_round" in repr(EGRandomizedProtocol(100, 0.2))


class TestDecay:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            DecayProtocol(1)
        with pytest.raises(InvalidParameterError):
            DecayProtocol(16, phase_length=0)

    def test_phase_probabilities(self):
        proto = DecayProtocol(16)  # phase length 5
        assert proto.phase_length == 5
        assert proto.probability_at(1) == 1.0
        assert proto.probability_at(2) == 0.5
        assert proto.probability_at(5) == 2.0**-4
        assert proto.probability_at(6) == 1.0  # new phase
        with pytest.raises(InvalidParameterError):
            proto.probability_at(0)

    def test_prepare_checks_n(self):
        with pytest.raises(InvalidParameterError):
            DecayProtocol(16).prepare(17, None, 0)

    def test_completes_on_gnp(self, gnp_medium):
        trace = simulate_broadcast(
            RadioNetwork(gnp_medium), DecayProtocol(gnp_medium.n), seed=3
        )
        assert trace.completed

    def test_completes_on_hypercube(self):
        g = hypercube(8)
        trace = simulate_broadcast(RadioNetwork(g), DecayProtocol(g.n), seed=4)
        assert trace.completed

    def test_custom_phase_length(self, gnp_medium):
        proto = DecayProtocol(gnp_medium.n, phase_length=6)
        trace = simulate_broadcast(RadioNetwork(gnp_medium), proto, seed=5)
        assert trace.completed

    def test_repr(self):
        assert "phase_length" in repr(DecayProtocol(64))


class TestUniform:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            UniformProtocol(0.0)
        with pytest.raises(InvalidParameterError):
            UniformProtocol(1.1)

    def test_probability_constant(self):
        proto = UniformProtocol(0.25)
        assert proto.probability_at(1) == proto.probability_at(99) == 0.25
        with pytest.raises(InvalidParameterError):
            proto.probability_at(0)

    def test_q_one_always_transmits(self, rng):
        proto = UniformProtocol(1.0)
        mask = proto.transmit_mask(1, np.ones(10, dtype=bool), np.zeros(10, dtype=np.int64), rng)
        assert np.all(mask)

    def test_completes_with_good_rate(self, gnp_medium):
        d = gnp_medium.average_degree
        trace = simulate_broadcast(
            RadioNetwork(gnp_medium), UniformProtocol(1.0 / d), seed=6,
            max_rounds=4000,
        )
        assert trace.completed

    def test_repr(self):
        assert "0.25" in repr(UniformProtocol(0.25))


class TestOblivious:
    def test_sequence_cycles(self):
        proto = ObliviousProtocol([0.5, 0.25])
        assert proto.probability_at(1) == 0.5
        assert proto.probability_at(2) == 0.25
        assert proto.probability_at(3) == 0.5

    def test_callable(self):
        proto = ObliviousProtocol(lambda t: 1.0 / t)
        assert proto.probability_at(4) == 0.25

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ObliviousProtocol([])
        with pytest.raises(InvalidParameterError):
            ObliviousProtocol([1.5])
        proto = ObliviousProtocol(lambda t: 2.0)
        with pytest.raises(InvalidParameterError):
            proto.probability_at(1)
        with pytest.raises(InvalidParameterError):
            ObliviousProtocol([0.5]).probability_at(0)

    def test_mask_respects_probability(self, rng):
        proto = ObliviousProtocol([0.0])
        informed = np.ones(50, dtype=bool)
        mask = proto.transmit_mask(1, informed, np.zeros(50, dtype=np.int64), rng)
        assert not np.any(mask)

    def test_equivalent_to_uniform(self, gnp_small):
        # Same seed, same probability law -> identical trajectories.
        net = RadioNetwork(gnp_small)
        a = simulate_broadcast(net, UniformProtocol(0.1), seed=7)
        b = simulate_broadcast(net, ObliviousProtocol(lambda t: 0.1), seed=7)
        assert a.completion_round == b.completion_round
