"""Unit tests for the deterministic id-slot protocol."""

import numpy as np
import pytest

from repro.broadcast.distributed import IdSlotProtocol
from repro.errors import InvalidParameterError
from repro.graphs import diameter, gnp_connected, path_graph
from repro.radio import RadioNetwork, simulate_broadcast


class TestIdSlot:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            IdSlotProtocol(0)
        with pytest.raises(InvalidParameterError):
            IdSlotProtocol(5).slot_owner(0)
        with pytest.raises(InvalidParameterError):
            IdSlotProtocol(5).prepare(6, None, 0)

    def test_slot_owner_cycles(self):
        proto = IdSlotProtocol(4)
        assert [proto.slot_owner(t) for t in range(1, 9)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_single_transmitter_per_round(self, rng):
        proto = IdSlotProtocol(10)
        informed = np.ones(10, dtype=bool)
        for t in (1, 5, 10, 11):
            mask = proto.transmit_mask(t, informed, np.zeros(10, dtype=np.int64), rng)
            assert int(mask.sum()) == 1
            assert mask[proto.slot_owner(t)]

    def test_collision_free_run(self, gnp_small):
        net = RadioNetwork(gnp_small)
        trace = simulate_broadcast(
            net, IdSlotProtocol(net.n), 0, seed=1, max_rounds=net.n * net.n
        )
        assert trace.completed
        assert trace.total_collisions == 0

    def test_completes_within_n_times_depth(self):
        g = gnp_connected(80, 0.12, seed=40)
        net = RadioNetwork(g)
        trace = simulate_broadcast(
            net, IdSlotProtocol(80), 0, seed=2, max_rounds=80 * 80
        )
        assert trace.completion_round <= 80 * (diameter(g) + 1)

    def test_deterministic_trace(self):
        g = path_graph(10)
        net = RadioNetwork(g)
        a = simulate_broadcast(net, IdSlotProtocol(10), 0, seed=1, max_rounds=200)
        b = simulate_broadcast(net, IdSlotProtocol(10), 0, seed=99, max_rounds=200)
        # No randomness at all: seeds are irrelevant.
        assert a.completion_round == b.completion_round

    def test_much_slower_than_randomized(self):
        import math

        n = 256
        p = 4 * math.log(n) / n
        g = gnp_connected(n, p, seed=41)
        net = RadioNetwork(g)
        from repro.broadcast.distributed import EGRandomizedProtocol

        det = simulate_broadcast(
            net, IdSlotProtocol(n), 0, seed=0, max_rounds=n * n
        ).completion_round
        rand = simulate_broadcast(
            net, EGRandomizedProtocol(n, p), 0, seed=0, p=p
        ).completion_round
        assert det > 5 * rand
