"""Unit tests for schedule local-search optimization."""

import pytest

from repro.broadcast.centralized import (
    ElsasserGasieniecScheduler,
    SequentialLayerScheduler,
    optimize_schedule,
)
from repro.errors import ScheduleError
from repro.graphs import gnp_connected, path_graph, star_graph
from repro.radio import RadioNetwork, Schedule, verify_schedule


class TestOptimizeSchedule:
    def test_result_still_completes(self):
        g = gnp_connected(200, 0.1, seed=30)
        schedule = ElsasserGasieniecScheduler(seed=0).build(g, 0)
        report = optimize_schedule(g, schedule, 0)
        assert verify_schedule(RadioNetwork(g), report.schedule, 0)

    def test_never_longer(self):
        g = gnp_connected(200, 0.1, seed=31)
        schedule = ElsasserGasieniecScheduler(seed=0).build(g, 0)
        report = optimize_schedule(g, schedule, 0)
        assert report.final_rounds <= report.initial_rounds
        assert report.saved_rounds == report.initial_rounds - report.final_rounds

    def test_drops_padding_rounds(self):
        # A schedule with obviously redundant rounds gets shortened.
        g = star_graph(12)
        padded = Schedule(12, [[0], [0], [1], [2], [0]])
        report = optimize_schedule(g, padded, 0)
        assert report.final_rounds == 1
        assert report.drops >= 1

    def test_merges_sequential_rounds(self):
        # Sequential per-layer schedules transmit one node per round;
        # many of those singleton rounds can be merged or dropped.
        g = gnp_connected(150, 0.12, seed=32)
        seq = SequentialLayerScheduler().build(g, 0)
        report = optimize_schedule(g, seq, 0, max_passes=4)
        assert report.final_rounds < len(seq)
        assert verify_schedule(RadioNetwork(g), report.schedule, 0)

    def test_minimal_schedule_unchanged(self):
        g = star_graph(8)
        minimal = Schedule(8, [[0]])
        report = optimize_schedule(g, minimal, 0)
        assert report.final_rounds == 1
        assert report.saved_rounds == 0

    def test_incomplete_input_rejected(self):
        g = path_graph(6)
        incomplete = Schedule(6, [[0]])
        with pytest.raises(ScheduleError, match="does not complete"):
            optimize_schedule(g, incomplete, 0)

    def test_report_repr(self):
        g = star_graph(6)
        report = optimize_schedule(g, Schedule(6, [[0], [1]]), 0)
        assert "rounds" in repr(report)

    def test_eg_schedule_near_local_optimum(self):
        # The phase-structured schedule shouldn't leave huge slack: local
        # search trims it by at most ~half.
        g = gnp_connected(300, 16 / 300, seed=33)
        schedule = ElsasserGasieniecScheduler(seed=1).build(g, 0)
        report = optimize_schedule(g, schedule, 0)
        assert report.final_rounds >= len(schedule) // 2
