"""Unit tests for the age-based adaptive protocol."""

import math

import numpy as np
import pytest

from repro.broadcast.distributed import AgeBasedProtocol, DecayProtocol
from repro.errors import InvalidParameterError
from repro.graphs import gnp_connected, torus_2d
from repro.radio import RadioNetwork, repeat_broadcast, simulate_broadcast


class TestConstruction:
    def test_defaults(self):
        proto = AgeBasedProtocol(1000, 0.016)  # d = 16
        assert proto.floor == pytest.approx(1 / 16)
        assert proto.initial == 1.0

    def test_floor_never_exceeds_initial(self):
        proto = AgeBasedProtocol(100, 0.5, initial=0.2, floor=0.9)
        assert proto.floor == 0.2

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AgeBasedProtocol(1, 0.5)
        with pytest.raises(InvalidParameterError):
            AgeBasedProtocol(100, 0.0)
        with pytest.raises(InvalidParameterError):
            AgeBasedProtocol(100, 0.5, initial=0.0)
        with pytest.raises(InvalidParameterError):
            AgeBasedProtocol(100, 0.5, halflife=0)
        with pytest.raises(InvalidParameterError):
            AgeBasedProtocol(100, 0.5, floor=0.0)

    def test_prepare_checks_n(self):
        with pytest.raises(InvalidParameterError):
            AgeBasedProtocol(100, 0.2).prepare(99, 0.2, 0)

    def test_repr(self):
        assert "halflife" in repr(AgeBasedProtocol(100, 0.2))


class TestProbabilityLaw:
    def test_age_zero_is_initial(self):
        proto = AgeBasedProtocol(1000, 0.016, initial=0.8)
        assert proto.probability_of_age(0.0) == pytest.approx(0.8)

    def test_halving(self):
        proto = AgeBasedProtocol(1000, 0.016, halflife=2.0, floor=1e-6)
        assert proto.probability_of_age(2.0) == pytest.approx(0.5)
        assert proto.probability_of_age(4.0) == pytest.approx(0.25)

    def test_floor_reached(self):
        proto = AgeBasedProtocol(1000, 0.016)
        assert proto.probability_of_age(1000.0) == pytest.approx(proto.floor)

    def test_monotone_decreasing(self):
        proto = AgeBasedProtocol(1000, 0.016)
        ages = np.arange(20, dtype=float)
        probs = proto.probability_of_age(ages)
        assert np.all(np.diff(probs) <= 0)

    def test_mask_fresh_vs_stale(self, rng):
        proto = AgeBasedProtocol(10000, 16 / 10000, halflife=1.0)
        informed = np.ones(10000, dtype=bool)
        informed_round = np.full(10000, 0, dtype=np.int64)
        informed_round[:5000] = 99  # fresh at t=100
        mask = proto.transmit_mask(100, informed, informed_round, rng)
        fresh_rate = mask[:5000].mean()
        stale_rate = mask[5000:].mean()
        assert fresh_rate > 5 * stale_rate


class TestBehaviour:
    def test_completes_on_gnp(self):
        n = 512
        p = 4 * math.log(n) / n
        g = gnp_connected(n, p, seed=21)
        trace = simulate_broadcast(
            RadioNetwork(g), AgeBasedProtocol(n, p), seed=1, max_rounds=5000
        )
        assert trace.completed

    def test_beats_decay_on_torus(self):
        # The E16 headline at one size: frontier-hot adaptivity wins on
        # high-diameter graphs.
        g = torus_2d(24, 24)
        n = g.n
        net = RadioNetwork(g)
        age = repeat_broadcast(
            net, AgeBasedProtocol(n, g.average_degree / n),
            repetitions=4, seed=2, max_rounds=30000,
        )
        decay = repeat_broadcast(
            net, DecayProtocol(n), repetitions=4, seed=3, max_rounds=30000
        )
        assert np.mean(age) < np.mean(decay)

    def test_uninformed_never_selected(self, rng):
        proto = AgeBasedProtocol(100, 0.2)
        informed = np.zeros(100, dtype=bool)
        informed[:10] = True
        informed_round = np.where(informed, 0, -1).astype(np.int64)
        mask = proto.transmit_mask(5, informed, informed_round, rng)
        assert not np.any(mask[10:])
