"""Unit tests for the centralized schedulers (Theorem 5 + baselines)."""


import numpy as np
import pytest

from repro.broadcast.centralized import (
    ElsasserGasieniecScheduler,
    GreedyCoverScheduler,
    RoundRobinScheduler,
    SequentialLayerScheduler,
)
from repro.broadcast.centralized.base import ScheduleBuilder
from repro.errors import DisconnectedGraphError, InvalidParameterError, ScheduleError
from repro.graphs import (
    Adjacency,
    balanced_tree,
    cycle_graph,
    gnp_connected,
    hypercube,
    path_graph,
    star_graph,
)
from repro.radio import RadioNetwork, verify_schedule
from repro.theory.bounds import centralized_bound

ALL_SCHEDULERS = [
    lambda: ElsasserGasieniecScheduler(seed=0),
    lambda: GreedyCoverScheduler(seed=0),
    lambda: SequentialLayerScheduler(),
    lambda: RoundRobinScheduler(),
]

SMALL_GRAPHS = [
    ("path", lambda: path_graph(9)),
    ("star", lambda: star_graph(12)),
    ("cycle-even", lambda: cycle_graph(8)),
    ("cycle-odd", lambda: cycle_graph(9)),
    ("tree", lambda: balanced_tree(3, 3)),
    ("hypercube", lambda: hypercube(5)),
    ("gnp", lambda: gnp_connected(80, 0.12, seed=2)),
    ("single-edge", lambda: path_graph(2)),
]


class TestScheduleBuilder:
    def test_tracks_informed(self, path5):
        b = ScheduleBuilder(path5, 0)
        assert b.num_informed == 1
        gained = b.add_round(np.array([0]))
        assert gained == 1
        assert b.informed[1]
        assert not b.done

    def test_rejects_uninformed_transmitter(self, path5):
        b = ScheduleBuilder(path5, 0)
        with pytest.raises(ScheduleError, match="scheduler bug"):
            b.add_round(np.array([4]))

    def test_source_validation(self, path5):
        with pytest.raises(ScheduleError):
            ScheduleBuilder(path5, 10)

    def test_node_sets(self, path5):
        b = ScheduleBuilder(path5, 2)
        assert list(b.informed_nodes()) == [2]
        assert list(b.uninformed_nodes()) == [0, 1, 3, 4]


@pytest.mark.parametrize("name,graph_fn", SMALL_GRAPHS)
@pytest.mark.parametrize("scheduler_fn", ALL_SCHEDULERS)
class TestCorrectnessMatrix:
    """Every scheduler must produce a verified schedule on every topology."""

    def test_schedule_completes(self, name, graph_fn, scheduler_fn):
        g = graph_fn()
        scheduler = scheduler_fn()
        schedule = scheduler.build(g, 0)
        assert verify_schedule(RadioNetwork(g), schedule, 0), (
            f"{scheduler.name} failed on {name}"
        )

    def test_schedule_from_nonzero_source(self, name, graph_fn, scheduler_fn):
        g = graph_fn()
        source = g.n - 1
        schedule = scheduler_fn().build(g, source)
        assert verify_schedule(RadioNetwork(g), schedule, source)


class TestDisconnectedRejection:
    @pytest.mark.parametrize("scheduler_fn", ALL_SCHEDULERS)
    def test_raises(self, scheduler_fn):
        g = Adjacency.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            scheduler_fn().build(g, 0)


class TestElsasserGasieniec:
    def test_phase_labels_present(self):
        g = gnp_connected(300, 16 / 300, seed=5)
        schedule = ElsasserGasieniecScheduler(seed=0).build(g, 0)
        phases = schedule.phase_lengths()
        assert "flood" in phases
        assert "selective" in phases or "cleanup" in phases

    def test_length_tracks_bound(self):
        # Schedule length within a small constant multiple of the bound.
        n, d = 800, 16.0
        g = gnp_connected(n, d / n, seed=6)
        schedule = ElsasserGasieniecScheduler(seed=1).build(g, 0)
        bound = centralized_bound(n, d / n)
        assert len(schedule) < 6 * bound

    def test_selective_sets_disjoint(self):
        g = gnp_connected(400, 16 / 400, seed=7)
        schedule = ElsasserGasieniecScheduler(seed=2).build(g, 0)
        used = set()
        for nodes, label in zip(schedule.rounds, schedule.labels):
            if label == "selective":
                as_set = set(int(v) for v in nodes)
                assert not (as_set & used), "selective sets must be disjoint"
                used |= as_set

    def test_ablation_no_parity(self):
        g = gnp_connected(200, 14 / 200, seed=8)
        schedule = ElsasserGasieniecScheduler(seed=0, use_parity=False).build(g, 0)
        assert verify_schedule(RadioNetwork(g), schedule, 0)

    def test_ablation_singleton_cleanup(self):
        g = gnp_connected(150, 12 / 150, seed=9)
        sched_singleton = ElsasserGasieniecScheduler(seed=0, cleanup="singleton").build(g, 0)
        assert verify_schedule(RadioNetwork(g), sched_singleton, 0)

    def test_ablation_reused_fractions(self):
        g = gnp_connected(200, 14 / 200, seed=10)
        schedule = ElsasserGasieniecScheduler(seed=0, fresh_fractions=False).build(g, 0)
        assert verify_schedule(RadioNetwork(g), schedule, 0)

    def test_param_validation(self):
        with pytest.raises(InvalidParameterError):
            ElsasserGasieniecScheduler(selective_constant=-1)
        with pytest.raises(InvalidParameterError):
            ElsasserGasieniecScheduler(selectivity=0)
        with pytest.raises(InvalidParameterError):
            ElsasserGasieniecScheduler(big_layer_fraction=0)
        with pytest.raises(InvalidParameterError):
            ElsasserGasieniecScheduler(cleanup="bogus")

    def test_deterministic_given_seed(self):
        g = gnp_connected(200, 14 / 200, seed=11)
        a = ElsasserGasieniecScheduler(seed=3).build(g, 0)
        b = ElsasserGasieniecScheduler(seed=3).build(g, 0)
        assert len(a) == len(b)
        assert all(np.array_equal(x, y) for x, y in zip(a.rounds, b.rounds))

    def test_cleanup_cap_raises(self):
        # Even cycle: the antipodal node survives flooding (two always-
        # colliding parents) and *requires* a cleanup round; a zero cap
        # must fail loudly, not silently emit an incomplete schedule.
        g = cycle_graph(8)
        with pytest.raises(ScheduleError, match="cleanup"):
            ElsasserGasieniecScheduler(seed=0, max_cleanup_rounds=0).build(g, 0)


class TestGreedyCover:
    def test_short_on_random_graph(self):
        n, d = 500, 16.0
        g = gnp_connected(n, d / n, seed=12)
        schedule = GreedyCoverScheduler(seed=0).build(g, 0)
        assert len(schedule) < 4 * centralized_bound(n, d / n)

    def test_round_cap(self):
        g = path_graph(30)
        with pytest.raises(ScheduleError, match="exceeded"):
            GreedyCoverScheduler(seed=0, max_rounds=3).build(g, 0)


class TestSequentialLayer:
    def test_every_round_single_transmitter(self):
        g = gnp_connected(100, 0.12, seed=13)
        schedule = SequentialLayerScheduler().build(g, 0)
        assert schedule.max_set_size == 1

    def test_collision_free(self):
        # Single transmitter per round means zero collisions at uninformed
        # listeners... collisions never occur at all.
        from repro.radio import execute_schedule

        g = gnp_connected(100, 0.12, seed=14)
        schedule = SequentialLayerScheduler().build(g, 0)
        trace = execute_schedule(RadioNetwork(g), schedule, 0, stop_when_complete=False)
        assert trace.total_collisions == 0

    def test_length_scales_with_cover_sizes(self):
        # On G(n,p) the big layer needs ~n/d transmitters: much longer
        # than the EG schedule.
        n, d = 600, 16.0
        g = gnp_connected(n, d / n, seed=15)
        seq = SequentialLayerScheduler().build(g, 0)
        eg = ElsasserGasieniecScheduler(seed=0).build(g, 0)
        assert len(seq) > 2 * len(eg)


class TestRoundRobin:
    def test_length_at_most_n_times_depth(self):
        g = gnp_connected(60, 0.15, seed=16)
        schedule = RoundRobinScheduler().build(g, 0)
        from repro.graphs import diameter

        assert len(schedule) <= g.n * (diameter(g) + 1)

    def test_path_best_case_source_zero(self):
        # From source 0 the id order matches the frontier: one new node
        # per round, n - 1 rounds total.
        g = path_graph(12)
        schedule = RoundRobinScheduler().build(g, 0)
        assert len(schedule) == 11
        assert verify_schedule(RadioNetwork(g), schedule, 0)

    def test_path_worst_case_source_end(self):
        # From source n-1 the sweep order opposes the frontier: roughly a
        # full n-round sweep per newly informed node, Θ(n²) total.
        g = path_graph(12)
        schedule = RoundRobinScheduler().build(g, 11)
        assert len(schedule) > 100
        assert verify_schedule(RadioNetwork(g), schedule, 11)
