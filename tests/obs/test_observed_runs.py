"""Observability integration: no-op guarantee, event streams, result parity.

Two load-bearing properties:

* **absence is free and invisible** — with no observer installed, engines
  produce bit-for-bit the traces they produced before the layer existed
  (the golden digests in tests/radio/test_dynamics.py pin this globally;
  here we pin observed == unobserved directly);
* **presence is schema-valid** — every registered dynamics, run under a
  sink, emits run-start / round / run-end events that pass
  :func:`repro.obs.sinks.validate_event`, and the batch engines emit the
  batch-* analogues.
"""

import numpy as np
import pytest

import repro
from repro import (
    MemoryTraceSink,
    MetricsRegistry,
    Observer,
    RadioNetwork,
    UniformProtocol,
    gnp_connected,
    simulate,
    use_observer,
)
from repro.backends import current_backend_name
from repro.faults import FaultPlan, LossyLinkModel
from repro.gossip import run_gossip_batch, simulate_gossip
from repro.obs.sinks import validate_event
from repro.radio.engine import run_broadcast_batch


@pytest.fixture(scope="module")
def net():
    return RadioNetwork(gnp_connected(40, 0.25, seed=5))


@pytest.fixture(scope="module")
def protocol():
    return UniformProtocol(0.25)


def observed(run, *args, **kwargs):
    """Run a callable under a fresh ambient observer; return both."""
    obs = Observer(MetricsRegistry(), MemoryTraceSink())
    with use_observer(obs):
        result = run(*args, **kwargs)
    return result, obs


class TestNoOpPath:
    def test_no_ambient_observer_by_default(self):
        assert repro.current_observer() is None

    def test_observed_serial_run_is_bit_identical(self, net, protocol):
        plain = repro.simulate_broadcast(net, protocol, seed=7)
        traced, obs = observed(repro.simulate_broadcast, net, protocol, seed=7)
        assert traced.records == plain.records
        assert traced.completed == plain.completed
        assert len(obs.sink.events) > 0

    def test_observed_batch_run_is_bit_identical(self, net, protocol):
        plain = run_broadcast_batch(net, protocol, repetitions=8, seed=3)
        traced, obs = observed(
            run_broadcast_batch, net, protocol, repetitions=8, seed=3
        )
        np.testing.assert_array_equal(
            traced.completion_rounds, plain.completion_rounds
        )
        np.testing.assert_array_equal(
            traced.informed_fractions, plain.informed_fractions
        )
        assert len(obs.sink.events) > 0

    def test_unobserved_run_emits_nothing(self, net, protocol):
        # A sink that is merely constructed — never installed — sees no
        # events, and no ambient observer leaks out of engine internals.
        sink = MemoryTraceSink()
        repro.simulate_broadcast(net, protocol, seed=7)
        run_broadcast_batch(net, protocol, repetitions=4, seed=3)
        assert sink.events == []
        assert repro.current_observer() is None


SERIAL_CASES = [
    ("broadcast", lambda net: {"protocol": UniformProtocol(0.25)}),
    ("gossip", lambda net: {"protocol": UniformProtocol(0.25)}),
    (
        "multimessage",
        lambda net: {"protocol": UniformProtocol(0.25), "sources": [0, 1, 2]},
    ),
    ("push", lambda net: {}),
    ("push-pull", lambda net: {}),
    ("agents", lambda net: {"num_agents": 8}),
]


class TestEventStream:
    @pytest.mark.parametrize("name,make_kwargs", SERIAL_CASES)
    def test_every_dynamics_emits_schema_valid_events(
        self, net, name, make_kwargs
    ):
        obs = Observer(sink=MemoryTraceSink())
        trace = simulate(name, net, obs=obs, seed=11, **make_kwargs(net))
        events = obs.sink.events
        assert events, f"{name} emitted no events"
        for event in events:
            validate_event(event)
            assert event["dynamics"] == name
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "run-start"
        assert kinds[-1] == "run-end"
        assert kinds.count("round") == trace.num_rounds
        assert events[-1]["completed"] is True
        # round events correlate to the run through a shared run id.
        assert len({event["run"] for event in events}) == 1

    def test_round_events_carry_dynamics_extras(self, net, protocol):
        obs = Observer(sink=MemoryTraceSink())
        simulate("broadcast", net, obs=obs, seed=11, protocol=protocol)
        rounds = [e for e in obs.sink.events if e["kind"] == "round"]
        assert all("new" in e and "informed" in e for e in rounds)
        obs2 = Observer(sink=MemoryTraceSink())
        simulate("gossip", net, obs=obs2, seed=11, protocol=protocol)
        rounds = [e for e in obs2.sink.events if e["kind"] == "round"]
        assert all("pairs_known" in e and "nodes_complete" in e for e in rounds)

    def test_fault_rounds_carry_faults_subdict(self, net, protocol):
        plan = FaultPlan(links=LossyLinkModel(net.adj, 0.9))
        obs = Observer(sink=MemoryTraceSink())
        simulate(
            "broadcast", net, obs=obs, seed=11, protocol=protocol, faults=plan
        )
        events = obs.sink.events
        assert events[0]["faulty"] is True
        rounds = [e for e in events if e["kind"] == "round"]
        assert rounds
        for event in rounds:
            validate_event(event)
            assert set(event["faults"]) == {"alive", "forgot", "garbage"}

    def test_batch_engines_emit_batch_events(self, net, protocol):
        result, obs = observed(
            run_broadcast_batch, net, protocol, repetitions=8, seed=3
        )
        events = obs.sink.events
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "batch-start"
        assert events[0]["backend"] == current_backend_name()
        assert kinds[-1] == "batch-end"
        assert kinds.count("batch-round") == result.num_rounds
        for event in events:
            validate_event(event)
            assert event["engine"] == "broadcast-batch"
        assert events[-1]["num_completed"] == 8

    def test_gossip_batch_engine_name(self, net, protocol):
        _, obs = observed(
            run_gossip_batch, net, protocol, repetitions=4, seed=3
        )
        assert {e["engine"] for e in obs.sink.events} == {"gossip-batch"}
        for event in obs.sink.events:
            validate_event(event)


class TestRegistryCounters:
    def test_serial_counters_match_trace(self, net, protocol):
        trace, obs = observed(repro.simulate_broadcast, net, protocol, seed=7)
        reg = obs.registry
        label = "broadcast"
        assert reg.counter_value("round.count", label=label) == trace.num_rounds
        assert (
            reg.counter_value("round.transmissions", label=label)
            == trace.total_transmissions
        )
        assert (
            reg.counter_value("round.collisions", label=label)
            == trace.total_collisions
        )
        assert reg.counter_value("run.count", label=label) == 1
        assert reg.histogram("round.wall_s", label=label).count == trace.num_rounds

    def test_batch_counters_match_result(self, net, protocol):
        result, obs = observed(
            run_broadcast_batch, net, protocol, repetitions=8, seed=3
        )
        reg = obs.registry
        label = protocol.name
        assert reg.counter_value("batch.rounds", label=label) == result.num_rounds
        assert (
            reg.counter_value("batch.transmissions", label=label)
            == result.total_transmissions
        )
        assert (
            reg.counter_value("batch.collisions", label=label)
            == result.total_collisions
        )


class TestUnifiedResultInterface:
    def test_serial_traces_satisfy_protocol(self, net, protocol):
        trace = repro.simulate_broadcast(net, protocol, seed=7)
        gossip = simulate_gossip(net, protocol, seed=7)
        for result in (trace, gossip):
            assert isinstance(result, repro.SimulationResult)
            assert result.num_rounds == len(result.informed_curve()) - 1
            assert result.total_transmissions >= 0

    def test_batch_results_satisfy_protocol_with_stats(self, net, protocol):
        result = run_broadcast_batch(
            net, protocol, repetitions=8, seed=3, with_stats=True
        )
        assert isinstance(result, repro.SimulationResult)
        assert result.completed is True
        assert len(result.informed_curve()) == result.num_rounds + 1
        assert result.informed_curve()[0] == 8  # sources of 8 trials
        assert result.total_transmissions > 0

    def test_batch_stats_unavailable_without_flag(self, net, protocol):
        result = run_broadcast_batch(net, protocol, repetitions=8, seed=3)
        with pytest.raises(ValueError, match="with_stats=True"):
            result.total_transmissions
        with pytest.raises(ValueError, match="with_stats=True"):
            result.informed_curve()

    def test_observer_implies_stats_collection(self, net, protocol):
        result, _ = observed(
            run_broadcast_batch, net, protocol, repetitions=8, seed=3
        )
        assert result.total_transmissions > 0  # no ValueError

    def test_stats_do_not_perturb_trials(self, net, protocol):
        plain = run_broadcast_batch(net, protocol, repetitions=8, seed=3)
        stats = run_broadcast_batch(
            net, protocol, repetitions=8, seed=3, with_stats=True
        )
        np.testing.assert_array_equal(
            plain.completion_rounds, stats.completion_rounds
        )

    def test_rounds_executed_removed(self, net, protocol):
        # Deprecated in PR 4, removed in PR 9: num_rounds is the one name.
        broadcast = run_broadcast_batch(net, protocol, repetitions=4, seed=3)
        gossip = run_gossip_batch(net, protocol, repetitions=4, seed=3)
        for result in (broadcast, gossip):
            assert not hasattr(result, "rounds_executed")
            assert result.num_rounds >= 1
