"""MetricsRegistry semantics: series, snapshots, merging, rendering."""

import math
import pickle

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounters:
    def test_starts_at_zero(self):
        reg = MetricsRegistry()
        assert reg.counter_value("round.count") == 0.0

    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("round.count")
        reg.inc("round.count", 2.5)
        assert reg.counter_value("round.count") == 3.5

    def test_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("round.count", label="broadcast")
        reg.inc("round.count", 5, label="gossip")
        assert reg.counter_value("round.count", label="broadcast") == 1.0
        assert reg.counter_value("round.count", label="gossip") == 5.0
        assert reg.counter_value("round.count") == 0.0  # unlabeled untouched

    def test_counters_view_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("x")
        view = reg.counters()
        view[("x", "")] = 99.0
        assert reg.counter_value("x") == 1.0


class TestGauges:
    def test_unset_is_none(self):
        assert MetricsRegistry().gauge_value("jobs") is None

    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("jobs", 2)
        reg.set_gauge("jobs", 4)
        assert reg.gauge_value("jobs") == 4.0


class TestHistograms:
    def test_unobserved_is_none(self):
        assert MetricsRegistry().histogram("round.wall_s") is None

    def test_summary_moments(self):
        reg = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            reg.observe("round.wall_s", value)
        hist = reg.histogram("round.wall_s")
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.mean == 2.0
        assert hist.min == 1.0
        assert hist.max == 3.0

    def test_empty_mean_is_nan(self):
        reg = MetricsRegistry()
        reg.observe("x", 1.0)
        hist = reg.histogram("x")
        from repro.obs.metrics import HistogramSummary

        assert math.isnan(HistogramSummary().mean)
        assert not math.isnan(hist.mean)

    def test_buckets_are_monotone_in_value(self):
        # Larger observations never land in lower buckets.
        reg = MetricsRegistry()
        values = [1e-7, 1e-4, 0.02, 0.5, 3.0, 120.0]
        for v in values:
            reg.observe("t", v)
        hist = reg.histogram("t")
        assert hist.count == len(values)
        assert sum(hist.buckets.values()) == len(values)

    def test_len_counts_all_series(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("b", 1)
        reg.observe("c", 1.0)
        assert len(reg) == 3

    def test_empty_registry_is_truthy(self):
        # Presence means "instrumentation on", regardless of content.
        assert bool(MetricsRegistry())


class TestSnapshotMerge:
    def make_source(self):
        reg = MetricsRegistry()
        reg.inc("round.count", 3, label="broadcast")
        reg.inc("round.transmissions", 40)
        reg.set_gauge("jobs", 2)
        reg.observe("round.wall_s", 0.5)
        reg.observe("round.wall_s", 1.5)
        return reg

    def test_snapshot_is_picklable_plain_data(self):
        snap = self.make_source().snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_snapshot_adds_counters_and_histograms(self):
        parent = MetricsRegistry()
        parent.inc("round.count", 1, label="broadcast")
        parent.observe("round.wall_s", 2.0)
        parent.merge_snapshot(self.make_source().snapshot())
        assert parent.counter_value("round.count", label="broadcast") == 4.0
        assert parent.counter_value("round.transmissions") == 40.0
        hist = parent.histogram("round.wall_s")
        assert hist.count == 3
        assert hist.total == 4.0
        assert hist.max == 2.0

    def test_merge_snapshot_gauges_last_write_wins(self):
        parent = MetricsRegistry()
        parent.set_gauge("jobs", 8)
        parent.merge_snapshot(self.make_source().snapshot())
        assert parent.gauge_value("jobs") == 2.0

    def test_merge_registry_equals_merge_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.merge(self.make_source())
        b.merge_snapshot(self.make_source().snapshot())
        assert a.snapshot() == b.snapshot()

    def test_version_mismatch_rejected(self):
        snap = self.make_source().snapshot()
        snap["version"] = 99
        with pytest.raises(ValueError, match="version"):
            MetricsRegistry().merge_snapshot(snap)

    def test_merge_into_empty_round_trips(self):
        source = self.make_source()
        parent = MetricsRegistry()
        parent.merge_snapshot(source.snapshot())
        assert parent.snapshot() == source.snapshot()


class TestReport:
    def test_empty(self):
        assert MetricsRegistry().report() == "(empty registry)"

    def test_sections_and_span_grouping(self):
        reg = MetricsRegistry()
        reg.observe("span.experiment.E4", 0.25)
        reg.observe("round.wall_s", 0.01)
        reg.inc("round.count", 7)
        reg.set_gauge("jobs", 2)
        text = reg.report()
        assert "-- spans" in text
        assert "-- histograms" in text
        assert "-- counters" in text
        assert "-- gauges" in text
        assert "span.experiment.E4" in text
        # Spans render before the other histogram series.
        assert text.index("span.experiment.E4") < text.index("round.wall_s")

    def test_labeled_series_rendering(self):
        reg = MetricsRegistry()
        reg.inc("round.count", 3, label="broadcast")
        assert "round.count{broadcast}" in reg.report()
