"""Trace sinks and the v1 event schema."""

import io

import numpy as np
import pytest

from repro.obs import JsonlTraceSink, MemoryTraceSink
from repro.obs.sinks import SCHEMA_VERSION, read_jsonl_events, validate_event


def run_start(**over):
    event = {
        "v": SCHEMA_VERSION,
        "kind": "run-start",
        "run": 0,
        "dynamics": "broadcast",
        "n": 100,
        "max_rounds": 500,
        "faulty": False,
    }
    event.update(over)
    return event


def round_event(**over):
    event = {
        "v": SCHEMA_VERSION,
        "kind": "round",
        "run": 0,
        "dynamics": "broadcast",
        "t": 1,
        "transmitters": 3,
        "collisions": 0,
        "received": 2,
        "wall_s": 0.001,
    }
    event.update(over)
    return event


class TestValidateEvent:
    def test_accepts_minimal_events_of_every_kind(self):
        validate_event(run_start())
        validate_event(round_event())
        validate_event(
            {
                "v": 1,
                "kind": "run-end",
                "run": 0,
                "dynamics": "push",
                "rounds": 12,
                "completed": True,
                "wall_s": 0.5,
            }
        )
        validate_event(
            {
                "v": 1,
                "kind": "batch-start",
                "run": 0,
                "engine": "broadcast-batch",
                "backend": "numpy",
                "n": 64,
                "repetitions": 32,
                "max_rounds": 400,
            }
        )
        validate_event(
            {
                "v": 1,
                "kind": "batch-round",
                "run": 0,
                "engine": "broadcast-batch",
                "t": 1,
                "active": 32,
                "wall_s": 0.01,
            }
        )
        validate_event(
            {
                "v": 1,
                "kind": "batch-end",
                "run": 0,
                "engine": "broadcast-batch",
                "rounds": 40,
                "num_completed": 32,
                "wall_s": 0.2,
            }
        )

    def test_accepts_executor_health_events(self):
        validate_event(
            {"v": 1, "kind": "exec-task-retry", "task": "E7", "attempt": 2,
             "reason": "worker process died"}
        )
        validate_event(
            {"v": 1, "kind": "exec-task-timeout", "task": "E7",
             "elapsed_s": 30.2}
        )
        validate_event({"v": 1, "kind": "exec-worker-crash", "victims": 2})
        validate_event(
            {"v": 1, "kind": "exec-pool-rebuild", "rebuilds": 1, "requeued": 3}
        )
        validate_event({"v": 1, "kind": "exec-degraded", "remaining": 4})

    def test_rejects_malformed_executor_events(self):
        with pytest.raises(ValueError, match="attempt"):
            validate_event(
                {"v": 1, "kind": "exec-task-retry", "task": "E7",
                 "reason": "crash"}
            )
        with pytest.raises(ValueError, match="must be int"):
            validate_event(
                {"v": 1, "kind": "exec-worker-crash", "victims": 2.5}
            )
        with pytest.raises(ValueError, match="elapsed_s"):
            validate_event(
                {"v": 1, "kind": "exec-task-timeout", "task": "E7",
                 "elapsed_s": "slow"}
            )

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_event([("v", 1)])

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            validate_event(run_start(v=0))
        with pytest.raises(ValueError, match="version"):
            validate_event({"kind": "round"})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            validate_event(run_start(kind="nope"))

    def test_rejects_missing_required_keys(self):
        broken = round_event()
        del broken["transmitters"]
        with pytest.raises(ValueError, match="transmitters"):
            validate_event(broken)

    def test_rejects_numpy_ints(self):
        # Producers must cast with int(); numpy scalars break json and
        # cross-version compatibility.
        with pytest.raises(ValueError, match="must be int"):
            validate_event(round_event(transmitters=np.int64(3)))

    def test_rejects_non_numeric_wall_s(self):
        with pytest.raises(ValueError, match="wall_s"):
            validate_event(round_event(wall_s="fast"))

    def test_faults_subdict_must_map_to_ints(self):
        validate_event(round_event(faults={"alive": 90, "forgot": 2, "garbage": 1}))
        with pytest.raises(ValueError, match="faults"):
            validate_event(round_event(faults={"alive": "many"}))
        with pytest.raises(ValueError, match="faults"):
            validate_event(round_event(faults=[1, 2, 3]))

    def test_extra_keys_are_allowed(self):
        # Consumers ignore unknown keys; producers may add extras.
        validate_event(round_event(new=2, informed=7, task="E4"))


class TestMemoryTraceSink:
    def test_buffers_in_order(self):
        sink = MemoryTraceSink()
        sink.emit(run_start())
        sink.emit(round_event())
        assert len(sink) == 2
        assert sink.events[0]["kind"] == "run-start"
        sink.close()  # no-op, must not raise
        sink.emit(round_event(t=2))
        assert len(sink) == 3


class TestJsonlTraceSink:
    def test_writes_one_compact_line_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        sink.emit(run_start())
        sink.emit(round_event())
        sink.close()
        assert sink.num_emitted == 2
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert " " not in lines[0]  # compact separators

    def test_round_trips_through_read_jsonl_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        events = [run_start(), round_event(), round_event(t=2)]
        for event in events:
            sink.emit(event)
        sink.close()
        back = list(read_jsonl_events(str(path)))
        assert back == events
        for event in back:
            validate_event(event)

    def test_accepts_open_file_object_and_does_not_close_it(self):
        buf = io.StringIO()
        sink = JsonlTraceSink(buf)
        sink.emit(run_start())
        sink.close()
        assert not buf.closed  # caller owns the handle
        assert buf.getvalue().count("\n") == 1

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            sink.emit(run_start())
