"""Span timing contexts and the ambient-observer mechanism."""

from repro.obs import (
    MetricsRegistry,
    Observer,
    current_observer,
    maybe_span,
    use_observer,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span


class TestSpan:
    def test_records_into_span_series(self):
        reg = MetricsRegistry()
        with Span(reg, "sweep.task", "E4") as span:
            pass
        assert span.elapsed is not None and span.elapsed >= 0.0
        hist = reg.histogram("span.sweep.task", label="E4")
        assert hist is not None
        assert hist.count == 1
        assert hist.total == span.elapsed

    def test_records_even_when_body_raises(self):
        reg = MetricsRegistry()
        try:
            with Span(reg, "boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert reg.histogram("span.boom").count == 1

    def test_null_span_is_shared_noop(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
        assert isinstance(NULL_SPAN, NullSpan)


class TestAmbientObserver:
    def test_default_is_none(self):
        assert current_observer() is None

    def test_use_observer_installs_and_restores(self):
        obs = Observer(MetricsRegistry())
        with use_observer(obs):
            assert current_observer() is obs
            inner = Observer(MetricsRegistry())
            with use_observer(inner):
                assert current_observer() is inner
            assert current_observer() is obs
        assert current_observer() is None

    def test_use_observer_none_shields_scope(self):
        obs = Observer(MetricsRegistry())
        with use_observer(obs):
            with use_observer(None):
                assert current_observer() is None
            assert current_observer() is obs

    def test_maybe_span_without_observer_is_noop(self):
        assert maybe_span("anything") is NULL_SPAN

    def test_maybe_span_without_registry_is_noop(self):
        from repro.obs import MemoryTraceSink

        with use_observer(Observer(sink=MemoryTraceSink())):
            assert maybe_span("anything") is NULL_SPAN

    def test_maybe_span_records_on_ambient_registry(self):
        reg = MetricsRegistry()
        with use_observer(Observer(reg)):
            with maybe_span("sweep.task", label="E4"):
                pass
        assert reg.histogram("span.sweep.task", label="E4").count == 1


class TestObserverForwarding:
    def test_inactive_without_parts(self):
        obs = Observer()
        assert obs.active is False
        assert Observer(MetricsRegistry()).active is True

    def test_inc_observe_span_without_registry_are_noops(self):
        obs = Observer()
        obs.inc("x")
        obs.observe("y", 1.0)
        assert obs.span("z") is NULL_SPAN

    def test_span_times_into_registry(self):
        reg = MetricsRegistry()
        obs = Observer(reg)
        with obs.span("sweep.task", label="E7"):
            pass
        assert reg.histogram("span.sweep.task", label="E7").count == 1

    def test_emit_applies_tags_without_mutating(self):
        from repro.obs import MemoryTraceSink

        sink = MemoryTraceSink()
        obs = Observer(sink=sink, tags={"task": "E4"})
        event = {"v": 1, "kind": "round"}
        obs.emit(event)
        assert sink.events[0]["task"] == "E4"
        assert "task" not in event  # original untouched

    def test_run_ids_are_fresh(self):
        obs = Observer(MetricsRegistry())
        assert obs.next_run_id() == 0
        assert obs.next_run_id() == 1
