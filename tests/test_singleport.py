"""Unit tests for single-port rumor spreading (related-work substrate)."""

import math

import numpy as np
import pytest

from repro.errors import (
    BroadcastIncompleteError,
    DisconnectedGraphError,
    InvalidParameterError,
)
from repro.graphs import Adjacency, complete_graph, path_graph
from repro.singleport import push_broadcast, push_pull_broadcast


class TestPush:
    def test_completes_on_star(self, star10):
        trace = push_broadcast(star10, 0, seed=0)
        assert trace.completed
        # Hub informs one leaf per round: at least 9 rounds.
        assert trace.completion_round >= 9

    def test_completes_on_gnp(self, gnp_medium):
        trace = push_broadcast(gnp_medium, 0, seed=1)
        assert trace.completed

    def test_no_collisions_ever(self, gnp_medium):
        trace = push_broadcast(gnp_medium, 0, seed=2)
        assert trace.total_collisions == 0

    def test_time_order_log_n_on_clique(self):
        # On K_n push completes in log2 n + ln n + O(1) w.h.p.
        n = 256
        g = complete_graph(n)
        times = [push_broadcast(g, 0, seed=s).completion_round for s in range(5)]
        reference = math.log2(n) + math.log(n)
        assert np.mean(times) < 2 * reference
        assert np.mean(times) > 0.5 * reference

    def test_disconnected_raises(self):
        g = Adjacency.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            push_broadcast(g, 0)

    def test_source_out_of_range(self, path5):
        # A bad source id is a parameter error, not a graph property.
        with pytest.raises(InvalidParameterError):
            push_broadcast(path5, 9)
        with pytest.raises(InvalidParameterError):
            push_pull_broadcast(path5, -1)

    def test_budget_exhaustion(self, path5):
        # A path of 5 with tiny budget: push advances ~1 hop/round.
        with pytest.raises(BroadcastIncompleteError):
            push_broadcast(path_graph(200), 0, seed=3, max_rounds=5)

    def test_deterministic_given_seed(self, gnp_small):
        a = push_broadcast(gnp_small, 0, seed=9).completion_round
        b = push_broadcast(gnp_small, 0, seed=9).completion_round
        assert a == b

    def test_monotone_informed_curve(self, gnp_small):
        trace = push_broadcast(gnp_small, 0, seed=4)
        assert np.all(np.diff(trace.informed_curve()) >= 0)


class TestPushPull:
    def test_completes(self, gnp_medium):
        trace = push_pull_broadcast(gnp_medium, 0, seed=5)
        assert trace.completed

    def test_faster_than_push_on_star(self, star10):
        # Pull lets every leaf call the hub in round 1: two rounds total
        # (vs ~n for push).
        pp = push_pull_broadcast(star10, 0, seed=6).completion_round
        p = push_broadcast(star10, 0, seed=6).completion_round
        assert pp <= 3
        assert pp < p

    def test_faster_or_equal_on_gnp(self, gnp_medium):
        pp = np.mean(
            [push_pull_broadcast(gnp_medium, 0, seed=s).completion_round for s in range(4)]
        )
        p = np.mean(
            [push_broadcast(gnp_medium, 0, seed=s).completion_round for s in range(4)]
        )
        assert pp <= p

    def test_single_node(self):
        g = Adjacency.empty(1)
        trace = push_broadcast(g, 0, seed=0)
        assert trace.completed
        assert trace.num_rounds == 0
