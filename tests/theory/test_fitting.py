"""Unit tests for the scaling-law fitting helpers."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.theory.fitting import (
    STANDARD_MODELS,
    FitResult,
    compare_models,
    fit_feature,
    linear_fit,
)


class TestLinearFit:
    def test_exact_line(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        fit = linear_fit(x, 2 * x + 1)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line(self, rng):
        x = np.linspace(0, 10, 50)
        y = 3 * x - 2 + rng.normal(0, 0.1, 50)
        fit = linear_fit(x, y)
        assert fit.slope == pytest.approx(3.0, abs=0.1)
        assert fit.r_squared > 0.99

    def test_constant_y(self):
        x = np.array([1.0, 2.0, 3.0])
        fit = linear_fit(x, np.full(3, 5.0))
        assert fit.slope == pytest.approx(0.0, abs=1e-12)
        assert fit.r_squared == 1.0

    def test_predict(self):
        fit = FitResult(slope=2.0, intercept=1.0, r_squared=1.0)
        assert list(fit.predict(np.array([0.0, 1.0]))) == [1.0, 3.0]

    def test_str(self):
        fit = linear_fit(np.array([1.0, 2.0]), np.array([1.0, 2.0]), "ln n")
        assert "ln n" in str(fit)
        assert "R²" in str(fit)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            linear_fit(np.array([1.0]), np.array([1.0]))
        with pytest.raises(InvalidParameterError):
            linear_fit(np.array([1.0, 1.0]), np.array([1.0, 2.0]))
        with pytest.raises(InvalidParameterError):
            linear_fit(np.array([1.0, 2.0]), np.array([[1.0, 2.0]]).T.ravel()[:1])


class TestFitFeature:
    def test_log_feature(self):
        n = np.array([10.0, 100.0, 1000.0, 10000.0])
        y = 5 * np.log(n) + 2
        fit = fit_feature(n, y, np.log, "ln n")
        assert fit.slope == pytest.approx(5.0)
        assert fit.feature_name == "ln n"


class TestCompareModels:
    def test_identifies_log_growth(self):
        n = np.array([64.0, 128, 256, 512, 1024, 2048, 4096, 8192])
        y = 7 * np.log(n) + 3
        best, results = compare_models(n, y)
        assert best == "ln n"
        assert results["ln n"].r_squared > results["n"].r_squared

    def test_identifies_linear_growth(self):
        n = np.array([64.0, 128, 256, 512, 1024, 2048])
        y = 0.5 * n + 10
        best, _ = compare_models(n, y)
        assert best == "n"

    def test_custom_models(self):
        n = np.array([4.0, 16.0, 64.0, 256.0])
        y = n**2
        best, _ = compare_models(n, y, {"n^2": lambda x: x**2, "n": lambda x: x})
        assert best == "n^2"

    def test_empty_models_raises(self):
        with pytest.raises(InvalidParameterError):
            compare_models(np.array([1.0, 2.0]), np.array([1.0, 2.0]), {})

    def test_standard_models_cover_paper_laws(self):
        assert {"ln n", "ln^2 n", "n", "sqrt(n)"} <= set(STANDARD_MODELS)
