"""Unit tests for bootstrap CIs, quantiles and threshold estimation."""

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.theory.stats import (
    ThresholdFit,
    bootstrap_ci,
    estimate_threshold,
    quantile_summary,
)


class TestBootstrapCI:
    def test_contains_point_estimate(self, rng):
        sample = rng.normal(10, 2, size=100)
        est, lo, hi = bootstrap_ci(sample, seed=1)
        assert lo <= est <= hi
        assert est == pytest.approx(sample.mean())

    def test_width_shrinks_with_sample_size(self, rng):
        small = rng.normal(0, 1, size=10)
        big = rng.normal(0, 1, size=1000)
        _, lo_s, hi_s = bootstrap_ci(small, seed=2)
        _, lo_b, hi_b = bootstrap_ci(big, seed=2)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_coverage_monte_carlo(self):
        # 95% CI should contain the true mean in most of 40 trials.
        hits = 0
        master = np.random.default_rng(3)
        for _ in range(40):
            sample = master.normal(5.0, 1.0, size=60)
            _, lo, hi = bootstrap_ci(sample, seed=master, resamples=500)
            hits += lo <= 5.0 <= hi
        assert hits >= 32  # ~95% nominal; allow slack

    def test_custom_statistic(self, rng):
        sample = rng.normal(0, 1, size=200)
        est, lo, hi = bootstrap_ci(sample, np.median, seed=4)
        assert est == pytest.approx(np.median(sample))

    def test_deterministic_given_seed(self, rng):
        sample = rng.normal(0, 1, size=50)
        a = bootstrap_ci(sample, seed=5)
        b = bootstrap_ci(sample, seed=5)
        assert a == b

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            bootstrap_ci(np.array([1.0]))
        with pytest.raises(InvalidParameterError):
            bootstrap_ci(np.array([1.0, 2.0]), confidence=1.5)
        with pytest.raises(InvalidParameterError):
            bootstrap_ci(np.array([1.0, 2.0]), resamples=5)


class TestQuantileSummary:
    def test_ordering(self, rng):
        s = quantile_summary(rng.exponential(1.0, size=5000))
        assert s["median"] <= s["p90"] <= s["p95"] <= s["p99"] <= s["max"]

    def test_constant_sample(self):
        s = quantile_summary(np.full(10, 7.0))
        assert all(v == 7.0 for v in s.values())

    def test_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            quantile_summary(np.array([]))


class TestThresholdEstimation:
    def test_recovers_known_threshold(self):
        x = np.linspace(0, 4, 15)
        truth = ThresholdFit(location=1.44, steepness=5.0)
        fit = estimate_threshold(x, truth.predict(x))
        assert fit.location == pytest.approx(1.44, abs=0.1)

    def test_recovers_from_noisy_data(self, rng):
        x = np.linspace(0, 3, 12)
        truth = ThresholdFit(location=1.0, steepness=4.0)
        noisy = np.clip(truth.predict(x) + rng.normal(0, 0.05, x.size), 0, 1)
        fit = estimate_threshold(x, noisy)
        assert fit.location == pytest.approx(1.0, abs=0.3)

    def test_predict_is_monotone_falling(self):
        fit = ThresholdFit(location=2.0, steepness=3.0)
        y = fit.predict(np.array([0.0, 1.0, 2.0, 3.0, 4.0]))
        assert np.all(np.diff(y) < 0)
        assert y[2] == pytest.approx(0.5)

    def test_str(self):
        assert "threshold" in str(ThresholdFit(1.0, 2.0))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            estimate_threshold(np.array([1.0, 2.0]), np.array([1.0, 0.0]))
        with pytest.raises(InvalidParameterError):
            estimate_threshold(np.array([1.0, 2.0, 3.0]), np.array([1.0, 0.5, 2.0]))
        with pytest.raises(InvalidParameterError):
            estimate_threshold(np.array([1.0, 2.0, 3.0]), np.array([1.0, 0.5]))

    def test_e3_survival_data(self):
        # The actual E3 quick-mode series should locate c* near 1/ln 2.
        c = np.array([0.25, 0.5, 0.75, 1.0, 1.5, 2.0])
        prob = np.array([1.0, 1.0, 1.0, 0.85, 0.5, 0.0])
        fit = estimate_threshold(c, prob)
        assert fit.location == pytest.approx(1 / math.log(2), abs=0.35)
