"""Unit tests for the closed-form bound expressions."""

import math

import pytest

from repro.errors import InvalidParameterError
from repro.theory.bounds import (
    centralized_bound,
    connectivity_threshold,
    dense_bound,
    diameter_estimate,
    distributed_bound,
    expected_degree,
    optimal_centralized_degree,
)


class TestExpressions:
    def test_expected_degree(self):
        assert expected_degree(100, 0.1) == pytest.approx(10.0)

    def test_connectivity_threshold(self):
        assert connectivity_threshold(1000) == pytest.approx(math.log(1000) / 1000)

    def test_diameter_estimate(self):
        # d = n^(1/3) -> diameter ~ 3.
        n = 1000
        assert diameter_estimate(n, 10 / n) == pytest.approx(3.0)

    def test_centralized_bound_decomposition(self):
        n, p = 1024, 16 / 1024
        assert centralized_bound(n, p) == pytest.approx(
            diameter_estimate(n, p) + math.log(16)
        )

    def test_distributed_bound(self):
        assert distributed_bound(1024) == pytest.approx(math.log(1024))
        assert distributed_bound(1024, 0.1) == distributed_bound(1024)

    def test_dense_bound(self):
        assert dense_bound(1024, 0.5) == pytest.approx(math.log(1024) / math.log(2))
        # Smaller f -> faster broadcast.
        assert dense_bound(1024, 0.05) < dense_bound(1024, 0.5)

    def test_optimal_degree_minimises_bound(self):
        n = 4096
        d_star = optimal_centralized_degree(n)
        t_star = centralized_bound(n, d_star / n)
        for d in (d_star / 4, d_star * 4):
            assert centralized_bound(n, d / n) >= t_star

    def test_optimal_degree_formula(self):
        n = 4096
        assert optimal_centralized_degree(n) == pytest.approx(
            math.exp(math.sqrt(math.log(n)))
        )


class TestValidation:
    def test_bad_n(self):
        for fn in (
            lambda: expected_degree(1, 0.5),
            lambda: connectivity_threshold(1),
            lambda: distributed_bound(1),
            lambda: dense_bound(1, 0.5),
            lambda: optimal_centralized_degree(0),
        ):
            with pytest.raises(InvalidParameterError):
                fn()

    def test_bad_p(self):
        with pytest.raises(InvalidParameterError):
            expected_degree(100, 0.0)
        with pytest.raises(InvalidParameterError):
            expected_degree(100, 1.5)
        with pytest.raises(InvalidParameterError):
            diameter_estimate(100, 0.005)  # d <= 1
        with pytest.raises(InvalidParameterError):
            centralized_bound(100, 0.005)

    def test_bad_f(self):
        with pytest.raises(InvalidParameterError):
            dense_bound(100, 0.0)
        with pytest.raises(InvalidParameterError):
            dense_bound(100, 0.6)
