"""Unit tests for the Chernoff helpers (paper Eq. (1))."""

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.theory.concentration import (
    binomial_tail_upper,
    chernoff_lower,
    chernoff_upper,
    degree_bounds,
)


class TestChernoffUpper:
    def test_is_probability(self):
        for mu in (0.5, 5, 100):
            for rho in (0.01, 0.5, 3.0):
                b = chernoff_upper(mu, rho)
                assert 0.0 <= b <= 1.0

    def test_decreasing_in_rho(self):
        assert chernoff_upper(50, 1.0) < chernoff_upper(50, 0.1)

    def test_decreasing_in_mu(self):
        assert chernoff_upper(100, 0.5) < chernoff_upper(10, 0.5)

    def test_mu_zero(self):
        assert chernoff_upper(0, 1.0) == 1.0

    def test_matches_formula(self):
        mu, rho = 10.0, 0.5
        expected = (math.e**rho / (1 + rho) ** (1 + rho)) ** mu
        assert chernoff_upper(mu, rho) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            chernoff_upper(-1, 0.5)
        with pytest.raises(InvalidParameterError):
            chernoff_upper(10, 0.0)


class TestChernoffLower:
    def test_formula(self):
        assert chernoff_lower(20, 0.5) == pytest.approx(math.exp(-20 * 0.25 / 2))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            chernoff_lower(10, 0.0)
        with pytest.raises(InvalidParameterError):
            chernoff_lower(10, 1.0)
        with pytest.raises(InvalidParameterError):
            chernoff_lower(-1, 0.5)


class TestBinomialTail:
    def test_vacuous_below_mean(self):
        assert binomial_tail_upper(100, 0.5, 40) == 1.0

    def test_valid_bound_monte_carlo(self, rng):
        # Empirical tail frequency must not exceed the bound (it's an
        # upper bound) by more than Monte Carlo noise.
        trials, prob, threshold = 100, 0.3, 45
        bound = binomial_tail_upper(trials, prob, threshold)
        samples = rng.binomial(trials, prob, size=20000)
        freq = float(np.mean(samples >= threshold))
        assert freq <= bound + 3 * math.sqrt(bound * (1 - bound) / 20000 + 1e-9) + 1e-4

    def test_tightens_with_threshold(self):
        a = binomial_tail_upper(1000, 0.1, 150)
        b = binomial_tail_upper(1000, 0.1, 250)
        assert b < a

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            binomial_tail_upper(-1, 0.5, 1)
        with pytest.raises(InvalidParameterError):
            binomial_tail_upper(10, 1.5, 1)


class TestDegreeBounds:
    def test_contains_mean(self):
        lo, hi = degree_bounds(1000, 0.05)
        mu = 999 * 0.05
        assert lo < mu < hi

    def test_bounds_actually_hold(self, rng):
        n, p = 2000, 0.02
        lo, hi = degree_bounds(n, p, failure=1e-9 / n)
        # Union bound over n nodes: all degrees in [lo, hi] except w.p. 1e-9.
        degrees = rng.binomial(n - 1, p, size=n)
        assert degrees.min() >= lo
        assert degrees.max() <= hi

    def test_tighter_with_larger_failure(self):
        lo1, hi1 = degree_bounds(1000, 0.05, failure=1e-3)
        lo2, hi2 = degree_bounds(1000, 0.05, failure=1e-9)
        assert lo2 <= lo1 and hi2 >= hi1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            degree_bounds(1, 0.5)
        with pytest.raises(InvalidParameterError):
            degree_bounds(100, 0.0)
        with pytest.raises(InvalidParameterError):
            degree_bounds(100, 0.5, failure=0.0)
