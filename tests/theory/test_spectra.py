"""Unit tests for spectral expansion quantities."""

import math

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    Adjacency,
    complete_graph,
    cycle_graph,
    gnp_connected,
    hypercube,
    path_graph,
    torus_2d,
)
from repro.theory.spectra import (
    algebraic_connectivity,
    cheeger_bounds,
    estimate_mixing_time,
    normalized_adjacency,
    spectral_gap,
)


class TestNormalizedAdjacency:
    def test_row_sums_of_walk_matrix(self):
        g = gnp_connected(100, 0.1, seed=60)
        m = normalized_adjacency(g)
        # Symmetric with spectral radius 1; check symmetry numerically.
        diff = (m - m.T).toarray()
        assert np.abs(diff).max() < 1e-12

    def test_isolated_node_rejected(self):
        g = Adjacency.from_edges(3, [(0, 1)])
        with pytest.raises(GraphError, match="isolated"):
            normalized_adjacency(g)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            normalized_adjacency(Adjacency.empty(0))


class TestSpectralGap:
    def test_complete_graph(self):
        # K_n: lambda_2 = -1/(n-1), gap = 1 + 1/(n-1) = n/(n-1).
        n = 20
        assert spectral_gap(complete_graph(n)) == pytest.approx(n / (n - 1), abs=1e-9)

    def test_hypercube_exact(self):
        # Q_d: normalised eigenvalues 1 - 2k/d; gap = 2/d.
        for d in (4, 6, 10):
            assert spectral_gap(hypercube(d)) == pytest.approx(2.0 / d, abs=1e-8)

    def test_cycle_exact(self):
        # C_n: lambda_2 = cos(2 pi / n).
        n = 24
        assert spectral_gap(cycle_graph(n)) == pytest.approx(
            1 - math.cos(2 * math.pi / n), abs=1e-8
        )

    def test_expander_vs_torus(self):
        g_exp = gnp_connected(1024, 16 / 1024, seed=61)
        g_torus = torus_2d(32, 32)
        assert spectral_gap(g_exp) > 10 * spectral_gap(g_torus)

    def test_single_node(self):
        # A single node has no edges -> isolated -> rejected.
        with pytest.raises(GraphError):
            spectral_gap(Adjacency.empty(1))

    def test_dense_path_small_gap(self):
        # Long path: tiny gap.
        assert spectral_gap(path_graph(50)) < 0.02

    def test_small_graph_dense_branch(self):
        # n <= 64 path goes through numpy.linalg.eigvalsh.
        assert spectral_gap(cycle_graph(10)) == pytest.approx(
            1 - math.cos(2 * math.pi / 10), abs=1e-9
        )


class TestDerivedQuantities:
    def test_algebraic_connectivity_equals_gap(self):
        g = gnp_connected(128, 0.1, seed=62)
        assert algebraic_connectivity(g) == pytest.approx(spectral_gap(g))

    def test_cheeger_ordering(self):
        g = gnp_connected(128, 0.1, seed=63)
        lo, hi = cheeger_bounds(g)
        assert 0 <= lo <= hi

    def test_mixing_time_orders_families(self):
        fast = gnp_connected(1024, 16 / 1024, seed=64)
        slow = torus_2d(32, 32)
        assert estimate_mixing_time(fast) < estimate_mixing_time(slow)

    def test_mixing_time_infinite_for_disconnected_spectrum(self):
        # Two disjoint cliques joined by nothing: gap ~ 0... build via a
        # graph whose lambda_2 = 1 (disconnected) is rejected earlier by
        # the isolated check only if degree-0. Use two K3s: connected
        # components but no isolated nodes.
        g = Adjacency.from_edges(
            6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        )
        assert estimate_mixing_time(g) == math.inf
