"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BroadcastIncompleteError,
    DisconnectedGraphError,
    GraphError,
    InvalidParameterError,
    ReproError,
    ScheduleError,
    SimulationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            GraphError,
            DisconnectedGraphError,
            InvalidParameterError,
            ScheduleError,
            SimulationError,
            BroadcastIncompleteError,
        ):
            assert issubclass(exc, ReproError)

    def test_disconnected_is_graph_error(self):
        assert issubclass(DisconnectedGraphError, GraphError)

    def test_incomplete_is_simulation_error(self):
        assert issubclass(BroadcastIncompleteError, SimulationError)

    def test_invalid_parameter_is_value_error(self):
        # Callers using plain `except ValueError` still catch bad params.
        assert issubclass(InvalidParameterError, ValueError)

    def test_single_catch_all(self):
        with pytest.raises(ReproError):
            raise DisconnectedGraphError("x")


class TestBroadcastIncomplete:
    def test_carries_trace(self):
        err = BroadcastIncompleteError("partial", trace="sentinel")
        assert err.trace == "sentinel"
        assert "partial" in str(err)

    def test_trace_optional(self):
        assert BroadcastIncompleteError("x").trace is None

    def test_real_usage_has_trace(self, star10):
        import numpy as np

        from repro.radio import FunctionProtocol, RadioNetwork, simulate_broadcast

        silent = FunctionProtocol(
            lambda t, i, ir, rng: np.zeros(i.size, dtype=bool), name="silent"
        )
        with pytest.raises(BroadcastIncompleteError) as exc:
            simulate_broadcast(RadioNetwork(star10), silent, 0, max_rounds=3)
        assert exc.value.trace.num_rounds == 3
