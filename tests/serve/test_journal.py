"""Unit tests for the crash-safe job journal (WAL + recovery)."""

import json

import pytest

from repro.serve.journal import JOURNAL_SCHEMA_VERSION, JobJournal


def submit(journal, key, **spec_overrides):
    spec = {"kind": "simulate", "process": "broadcast", "seed": 1}
    spec.update(spec_overrides)
    journal.record_submit(key, spec)
    return spec


class TestAppend:
    def test_records_are_canonical_jsonl(self, tmp_path):
        journal = JobJournal(tmp_path)
        submit(journal, "aaa")
        journal.record_terminal("aaa", "done")
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first == {
            "v": JOURNAL_SCHEMA_VERSION,
            "op": "submit",
            "key": "aaa",
            "spec": {"kind": "simulate", "process": "broadcast", "seed": 1},
        }
        assert second == {
            "v": JOURNAL_SCHEMA_VERSION,
            "op": "terminal",
            "key": "aaa",
            "state": "done",
        }
        assert len(journal) == 2

    def test_root_directory_is_created(self, tmp_path):
        journal = JobJournal(tmp_path / "deep" / "nested")
        submit(journal, "aaa")
        assert journal.path.exists()


class TestRecover:
    def test_unpaired_submit_is_incomplete(self, tmp_path):
        journal = JobJournal(tmp_path)
        spec = submit(journal, "aaa")
        (entry,) = journal.recover()
        assert entry.key == "aaa" and entry.spec == spec

    def test_paired_submit_is_complete(self, tmp_path):
        journal = JobJournal(tmp_path)
        submit(journal, "aaa")
        journal.record_terminal("aaa", "done")
        assert journal.recover() == []

    def test_every_terminal_state_completes(self, tmp_path):
        for state in ("done", "failed", "cancelled", "timeout"):
            journal = JobJournal(tmp_path / state)
            submit(journal, "aaa")
            journal.record_terminal("aaa", state)
            assert journal.recover() == []

    def test_admission_order_is_preserved(self, tmp_path):
        journal = JobJournal(tmp_path)
        for key in ("ccc", "aaa", "bbb"):
            submit(journal, key)
        submit(journal, "ddd")
        journal.record_terminal("aaa", "done")
        assert [e.key for e in journal.recover()] == ["ccc", "bbb", "ddd"]

    def test_recover_compacts_the_file(self, tmp_path):
        journal = JobJournal(tmp_path)
        for i in range(5):
            submit(journal, f"k{i}", seed=i)
            journal.record_terminal(f"k{i}", "done")
        spec = submit(journal, "open")
        (entry,) = journal.recover()
        # Only the incomplete submit survives on disk...
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["op"] == "submit" and record["key"] == "open"
        assert record["spec"] == spec
        # ...so a later terminal append completes it for the next restart.
        journal.record_terminal(entry.key, "done")
        assert journal.recover() == []
        assert journal.path.read_text() == ""

    def test_duplicate_submits_collapse_to_one_entry(self, tmp_path):
        journal = JobJournal(tmp_path)
        first = submit(journal, "aaa", seed=1)
        submit(journal, "aaa", seed=1)
        (entry,) = journal.recover()
        assert entry.spec == first

    def test_empty_and_missing_journal(self, tmp_path):
        journal = JobJournal(tmp_path)
        assert journal.recover() == []
        assert len(journal) == 0


class TestCorruption:
    def test_torn_tail_is_quarantined(self, tmp_path):
        journal = JobJournal(tmp_path)
        submit(journal, "aaa")
        # Crash mid-append: a partial record with no newline.
        with open(journal.path, "a") as fh:
            fh.write('{"v": 1, "op": "sub')
        with pytest.warns(RuntimeWarning, match="quarantined"):
            (entry,) = journal.recover()
        assert entry.key == "aaa"  # the good prefix survives
        assert journal.quarantined == 1
        corrupt = journal.path.with_suffix(".jsonl.corrupt")
        assert corrupt.read_bytes() == b'{"v": 1, "op": "sub'
        # The journal itself is clean again: no warning on re-recovery.
        assert len(journal.recover()) == 1

    def test_garbage_line_truncates_from_there(self, tmp_path):
        journal = JobJournal(tmp_path)
        submit(journal, "aaa")
        with open(journal.path, "a") as fh:
            fh.write("not json at all\n")
        submit(journal, "bbb")  # after the corruption: not trusted
        with pytest.warns(RuntimeWarning, match="quarantined"):
            entries = journal.recover()
        assert [e.key for e in entries] == ["aaa"]

    def test_non_record_json_truncates(self, tmp_path):
        journal = JobJournal(tmp_path)
        submit(journal, "aaa")
        with open(journal.path, "a") as fh:
            fh.write('["a", "list"]\n')
        with pytest.warns(RuntimeWarning):
            entries = journal.recover()
        assert [e.key for e in entries] == ["aaa"]

    def test_records_missing_keys_are_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        with open(journal.path, "a") as fh:
            fh.write('{"op": "submit"}\n')  # no key
            fh.write('{"op": "submit", "key": "x", "spec": 3}\n')  # bad spec
            fh.write('{"op": "terminal", "key": ""}\n')  # empty key
        submit(journal, "good")
        (entry,) = journal.recover()
        assert entry.key == "good"
