"""CLI tests for the serve/submit subcommands and the --json flag."""

import json
import threading

import pytest

from repro.cli import build_parser, main
from repro.io import result_from_wire
from repro.schema import RESULT_SCHEMA_VERSION, canonical_json
from repro.serve import Client, JobManager, Server


class TestParserFlags:
    def test_json_flag(self):
        args = build_parser().parse_args(["run", "E7", "--json"])
        assert args.json is True
        args = build_parser().parse_args(["run-all", "--only", "E7", "--json"])
        assert args.json is True
        args = build_parser().parse_args(["run", "E7"])
        assert args.json is False

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--cache", "c", "--serve-workers", "4"]
        )
        assert args.port == 0
        assert args.cache == "c"
        assert args.serve_workers == 4
        assert args.max_pending == 256
        assert args.host == "127.0.0.1"

    def test_submit_flags(self):
        args = build_parser().parse_args(
            ["submit", "--experiments", "E1,E2", "--seed", "3", "--no-wait"]
        )
        assert args.experiments == "E1,E2"
        assert args.seed == 3
        assert args.no_wait is True
        assert args.spec is None


class TestRunJson:
    def test_run_json_is_the_wire_document(self, capsys):
        assert main(["run", "E7", "--seed", "1", "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["schema_version"] == RESULT_SCHEMA_VERSION
        assert doc["kind"] == "experiment-result"
        # Canonical bytes: reserialising changes nothing.
        assert out.strip() == canonical_json(doc)
        result = result_from_wire(doc)
        assert result.experiment_id == "E7"

    def test_run_json_round_trips_to_result(self, capsys):
        assert main(["run", "E7", "--seed", "1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        result = result_from_wire(doc)
        from repro.io import result_wire

        assert canonical_json(result_wire(result)) == canonical_json(doc)

    def test_run_all_json_sweep_document(self, capsys):
        assert main(["run-all", "--only", "E7", "--seed", "1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "experiment-sweep"
        assert [o["key"] for o in doc["outcomes"]] == ["E7"]
        assert doc["outcomes"][0]["status"] == "ok"
        assert doc["outcomes"][0]["result"]["kind"] == "experiment-result"

    def test_run_all_json_matches_server_sweep(self, tmp_path, capsys):
        """The satellite acceptance: CLI --json == POST /v1/sweeps, bytes."""
        assert main(["run-all", "--only", "E7", "--seed", "1", "--json"]) == 0
        cli_doc = json.loads(capsys.readouterr().out)
        with Client.local(cache=tmp_path / "cache", workers=1) as client:
            status = client.sweep(["E7"], quick=True, seed=1)
        assert status.ok
        assert canonical_json(status.result) == canonical_json(cli_doc)


class TestSubmitCommand:
    @pytest.fixture
    def server_addr(self, tmp_path):
        import asyncio

        manager = JobManager(cache=tmp_path / "cache", workers=1)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        server = Server(manager=manager)
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
        try:
            yield server.address
        finally:
            asyncio.run_coroutine_threadsafe(server.close(), loop).result(10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            manager.shutdown()

    def test_submit_requires_one_input(self, capsys):
        assert main(["submit"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert (
            main(["submit", "--spec", "x.json", "--experiments", "E1"]) == 2
        )

    def test_submit_spec_file(self, tmp_path, server_addr, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "process": "broadcast",
                    "graph": {"n": 30, "p": 0.3, "seed": 1},
                    "params": {"protocol": {"kind": "decay"}},
                    "seed": 7,
                    "max_rounds": 200,
                }
            )
        )
        assert (
            main(["submit", "--server", server_addr, "--spec", str(spec)])
            == 0
        )
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "done"
        assert status["result"]["kind"] == "broadcast-trace"

    def test_submit_unreachable_server_fails_cleanly(self, capsys):
        assert (
            main(
                [
                    "submit",
                    "--server",
                    "http://127.0.0.1:1",
                    "--experiments",
                    "E1",
                ]
            )
            == 1
        )
        assert "submit:" in capsys.readouterr().err
