"""Unit tests for the JobManager: caching, coalescing, events, metrics."""

import threading

import pytest

from repro.errors import JobQueueFullError
from repro.obs import MemoryTraceSink, MetricsRegistry, Observer
from repro.obs.sinks import validate_event
from repro.schema import canonical_json
from repro.serve.client import Client, load_result
from repro.serve.runner import JobManager, iter_job_events
from repro.serve.types import JobSpec

GRAPH = {"n": 30, "p": 0.3, "seed": 1}


def make_spec(**overrides) -> JobSpec:
    fields = dict(
        process="broadcast",
        graph=dict(GRAPH),
        params={"protocol": {"kind": "decay"}},
        seed=7,
        max_rounds=200,
    )
    fields.update(overrides)
    return JobSpec(**fields)


class TestCacheSemantics:
    def test_resubmit_hits_cache_with_identical_bytes(self, tmp_path):
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            cold = manager.submit(make_spec())
            assert manager.wait(cold, timeout=30)
            warm = manager.submit(make_spec())
            assert warm.done.is_set()  # born terminal: no execution
            assert cold.cache == "miss" and warm.cache == "hit"
            assert canonical_json(cold.result) == canonical_json(warm.result)
            assert manager.num_executions == 1
            assert manager.registry.counter_value("serve.cache.hits") == 1

    def test_differing_seeds_miss(self, tmp_path):
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            first = manager.submit(make_spec(seed=1))
            second = manager.submit(make_spec(seed=2))
            assert manager.wait(first, timeout=30)
            assert manager.wait(second, timeout=30)
            assert first.key != second.key
            assert manager.num_executions == 2
            assert manager.registry.counter_value("serve.cache.hits") == 0
            assert manager.registry.counter_value("serve.cache.misses") == 2

    def test_backend_shares_cache_entry(self, tmp_path):
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            cold = manager.submit(make_spec(backend=None))
            assert manager.wait(cold, timeout=30)
            warm = manager.submit(make_spec(backend="numpy"))
            assert warm.cache == "hit"
            assert manager.num_executions == 1

    def test_concurrent_identical_specs_coalesce(self, monkeypatch, tmp_path):
        # Pin the execution open so the second submit is guaranteed to
        # arrive while the first is in flight.
        release = threading.Event()
        calls = []

        def slow_execute(spec):
            calls.append(spec)
            release.wait(10)
            return {"schema_version": 1, "kind": "broadcast-trace"}

        monkeypatch.setattr(
            "repro.serve.runner.execute_spec", slow_execute
        )
        with JobManager(cache=tmp_path / "cache", workers=2) as manager:
            first = manager.submit(make_spec())
            second = manager.submit(make_spec())
            assert second is first  # the SAME job, not a twin
            release.set()
            assert manager.wait(first, timeout=10)
            assert len(calls) == 1
            assert manager.num_executions == 1
            assert (
                manager.registry.counter_value("serve.cache.coalesced") == 1
            )


class TestAdmission:
    def test_queue_full_rejects(self, monkeypatch, tmp_path):
        release = threading.Event()

        def slow_execute(spec):
            release.wait(10)
            return {"schema_version": 1, "kind": "broadcast-trace"}

        monkeypatch.setattr("repro.serve.runner.execute_spec", slow_execute)
        with JobManager(cache=None, workers=1, max_pending=1) as manager:
            manager.submit(make_spec(seed=1))
            with pytest.raises(JobQueueFullError, match="full"):
                manager.submit(make_spec(seed=2))
            release.set()
            assert manager.registry.counter_value("serve.rejections") == 1

    def test_shutdown_refuses_new_work(self, tmp_path):
        manager = JobManager(cache=None, workers=1)
        manager.shutdown()
        with pytest.raises(JobQueueFullError, match="shut down"):
            manager.submit(make_spec())


class TestFailures:
    def test_failed_execution_becomes_job_state(self, monkeypatch, tmp_path):
        def boom(spec):
            raise RuntimeError("kaboom")

        monkeypatch.setattr("repro.serve.runner.execute_spec", boom)
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            job = manager.submit(make_spec())
            assert manager.wait(job, timeout=10)
            assert job.state == "failed"
            assert "kaboom" in job.error
            assert job.result is None
            # Failures are never cached: a resubmit re-executes.
            assert job.key not in manager.cache

    def test_unknown_process_fails_cleanly(self, tmp_path):
        with JobManager(cache=None, workers=1) as manager:
            job = manager.submit(make_spec(process="nonsense"))
            assert manager.wait(job, timeout=30)
            assert job.state == "failed"
            assert job.error


class TestEventsAndMetrics:
    def test_event_tape_is_schema_valid_and_bracketed(self, tmp_path):
        with JobManager(cache=None, workers=1) as manager:
            job = manager.submit(make_spec())
            events = list(iter_job_events(job))
            assert events[0]["kind"] == "serve-job-start"
            assert events[-1]["kind"] == "serve-job-end"
            assert events[-1]["state"] == "done"
            assert any(e["kind"] == "run-start" for e in events)
            assert any(e["kind"] == "round" for e in events)
            for event in events:
                validate_event(event)
            # serve-job events carry the content address, so a stream
            # consumer can correlate jobs with cache entries.
            assert events[0]["spec"] == job.key

    def test_cache_hit_job_has_empty_tape(self, tmp_path):
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            cold = manager.submit(make_spec())
            assert manager.wait(cold, timeout=30)
            warm = manager.submit(make_spec())
            assert list(iter_job_events(warm)) == []

    def test_external_observer_sees_tee_and_serve_metrics(self, tmp_path):
        sink = MemoryTraceSink()
        obs = Observer(MetricsRegistry(), sink)
        with JobManager(cache=None, workers=1, obs=obs) as manager:
            job = manager.submit(make_spec())
            assert manager.wait(job, timeout=30)
        kinds = {event["kind"] for event in sink.events}
        assert {"serve-job-start", "serve-job-end", "run-start"} <= kinds
        assert obs.registry.counter_value("serve.requests", label="simulate") == 1
        assert obs.registry.counter_value("serve.jobs", label="done") == 1
        hist = obs.registry.histogram("serve.job_wall_s", label="simulate")
        assert hist is not None and hist.count == 1
        # Engine metrics from inside the job merge into the same registry.
        assert (
            obs.registry.counter_value("round.transmissions", label="broadcast")
            > 0
        )

    def test_status_snapshot(self, tmp_path):
        with JobManager(cache=None, workers=1) as manager:
            job = manager.submit(make_spec())
            assert manager.wait(job, timeout=30)
            status = job.status()
            assert status.ok and status.kind == "simulate"
            assert status.events == job.num_events()
            assert status.result["kind"] == "broadcast-trace"
            stats = manager.stats()
            assert stats["executions"] == 1
            assert stats["jobs"] == {"done": 1}


class TestInProcessClient:
    def test_verbs_and_decode(self, tmp_path):
        with Client.local(cache=tmp_path / "cache", workers=1) as client:
            status = client.simulate(
                "broadcast",
                GRAPH,
                protocol={"kind": "decay"},
                seed=7,
                max_rounds=200,
            )
            assert status.ok and status.cache == "miss"
            trace = load_result(status)
            assert trace.completed and trace.num_rounds >= 1
            again = client.job(status.id)
            assert again.id == status.id and again.ok
            health = client.health()
            assert health["ok"] and health["executions"] == 1
            events = list(client.events(status.id))
            assert events[0]["kind"] == "serve-job-start"

    def test_gossip_process(self, tmp_path):
        with Client.local(workers=1) as client:
            status = client.simulate(
                "gossip",
                {"n": 16, "p": 0.4, "seed": 2},
                protocol={"kind": "uniform", "q": 0.2},
                seed=3,
                max_rounds=400,
            )
            assert status.ok
            assert status.result["kind"] == "gossip-trace"
            trace = load_result(status)
            assert trace.tokens == 16
