"""Unit tests for the JobManager: caching, coalescing, events, metrics."""

import json
import threading
import time

import pytest

from repro.errors import JobQueueFullError, ServerDrainingError
from repro.obs import MemoryTraceSink, MetricsRegistry, Observer
from repro.obs.sinks import validate_event
from repro.schema import canonical_json
from repro.serve.client import Client, load_result
from repro.serve.journal import JobJournal
from repro.serve.runner import JobManager, iter_job_events
from repro.serve.types import JOB_CANCELLED, JOB_TIMEOUT, JobSpec

GRAPH = {"n": 30, "p": 0.3, "seed": 1}


def make_spec(**overrides) -> JobSpec:
    fields = dict(
        process="broadcast",
        graph=dict(GRAPH),
        params={"protocol": {"kind": "decay"}},
        seed=7,
        max_rounds=200,
    )
    fields.update(overrides)
    return JobSpec(**fields)


def slow_spec(**overrides) -> JobSpec:
    """A spec that grinds rounds for minutes: ``q`` is so small that no
    node ever transmits, so the engine spins to ``max_rounds`` — but each
    round is a boundary where cancellation and deadlines are checked."""
    fields = dict(
        process="broadcast",
        graph={"n": 200, "p": 0.05, "seed": 3},
        params={"protocol": {"kind": "uniform", "q": 1e-9}},
        seed=11,
        max_rounds=50_000_000,
    )
    fields.update(overrides)
    return JobSpec(**fields)


def wait_for_running(job, timeout=10.0):
    deadline = time.monotonic() + timeout
    while job.state == "queued" and time.monotonic() < deadline:
        time.sleep(0.005)
    return job.state == "running"


class TestCacheSemantics:
    def test_resubmit_hits_cache_with_identical_bytes(self, tmp_path):
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            cold = manager.submit(make_spec())
            assert manager.wait(cold, timeout=30)
            warm = manager.submit(make_spec())
            assert warm.done.is_set()  # born terminal: no execution
            assert cold.cache == "miss" and warm.cache == "hit"
            assert canonical_json(cold.result) == canonical_json(warm.result)
            assert manager.num_executions == 1
            assert manager.registry.counter_value("serve.cache.hits") == 1

    def test_differing_seeds_miss(self, tmp_path):
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            first = manager.submit(make_spec(seed=1))
            second = manager.submit(make_spec(seed=2))
            assert manager.wait(first, timeout=30)
            assert manager.wait(second, timeout=30)
            assert first.key != second.key
            assert manager.num_executions == 2
            assert manager.registry.counter_value("serve.cache.hits") == 0
            assert manager.registry.counter_value("serve.cache.misses") == 2

    def test_backend_shares_cache_entry(self, tmp_path):
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            cold = manager.submit(make_spec(backend=None))
            assert manager.wait(cold, timeout=30)
            warm = manager.submit(make_spec(backend="numpy"))
            assert warm.cache == "hit"
            assert manager.num_executions == 1

    def test_concurrent_identical_specs_coalesce(self, monkeypatch, tmp_path):
        # Pin the execution open so the second submit is guaranteed to
        # arrive while the first is in flight.
        release = threading.Event()
        calls = []

        def slow_execute(spec):
            calls.append(spec)
            release.wait(10)
            return {"schema_version": 1, "kind": "broadcast-trace"}

        monkeypatch.setattr(
            "repro.serve.runner.execute_spec", slow_execute
        )
        with JobManager(cache=tmp_path / "cache", workers=2) as manager:
            first = manager.submit(make_spec())
            second = manager.submit(make_spec())
            assert second is first  # the SAME job, not a twin
            release.set()
            assert manager.wait(first, timeout=10)
            assert len(calls) == 1
            assert manager.num_executions == 1
            assert (
                manager.registry.counter_value("serve.cache.coalesced") == 1
            )


class TestAdmission:
    def test_queue_full_rejects(self, monkeypatch, tmp_path):
        release = threading.Event()

        def slow_execute(spec):
            release.wait(10)
            return {"schema_version": 1, "kind": "broadcast-trace"}

        monkeypatch.setattr("repro.serve.runner.execute_spec", slow_execute)
        with JobManager(cache=None, workers=1, max_pending=1) as manager:
            manager.submit(make_spec(seed=1))
            with pytest.raises(JobQueueFullError, match="full"):
                manager.submit(make_spec(seed=2))
            release.set()
            assert manager.registry.counter_value("serve.rejections") == 1

    def test_shutdown_refuses_new_work(self, tmp_path):
        manager = JobManager(cache=None, workers=1)
        manager.shutdown()
        with pytest.raises(ServerDrainingError, match="shut down"):
            manager.submit(make_spec())

    def test_shutdown_marks_queued_jobs_failed(self, monkeypatch, tmp_path):
        # A job still queued behind a busy worker at shutdown must reach
        # a terminal state — otherwise its waiters block forever.
        release = threading.Event()
        started = threading.Event()

        def slow_execute(spec):
            started.set()
            release.wait(10)
            return {"schema_version": 1, "kind": "broadcast-trace"}

        monkeypatch.setattr("repro.serve.runner.execute_spec", slow_execute)
        manager = JobManager(cache=None, workers=1, max_pending=4)
        running = manager.submit(make_spec(seed=1))
        assert started.wait(10)
        queued = manager.submit(make_spec(seed=2))
        # Release the worker only once shutdown is underway: shutdown
        # cancels pending futures *before* waiting, so the queued job
        # deterministically never reaches the worker.
        threading.Timer(0.2, release.set).start()
        manager.shutdown()
        assert queued.done.is_set()
        assert queued.state == "failed"
        assert "shutting down" in queued.error
        assert running.done.is_set()


class TestFailures:
    def test_failed_execution_becomes_job_state(self, monkeypatch, tmp_path):
        def boom(spec):
            raise RuntimeError("kaboom")

        monkeypatch.setattr("repro.serve.runner.execute_spec", boom)
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            job = manager.submit(make_spec())
            assert manager.wait(job, timeout=10)
            assert job.state == "failed"
            assert "kaboom" in job.error
            assert job.result is None
            # Failures are never cached: a resubmit re-executes.
            assert job.key not in manager.cache

    def test_unknown_process_fails_cleanly(self, tmp_path):
        with JobManager(cache=None, workers=1) as manager:
            job = manager.submit(make_spec(process="nonsense"))
            assert manager.wait(job, timeout=30)
            assert job.state == "failed"
            assert job.error


class TestEventsAndMetrics:
    def test_event_tape_is_schema_valid_and_bracketed(self, tmp_path):
        with JobManager(cache=None, workers=1) as manager:
            job = manager.submit(make_spec())
            events = list(iter_job_events(job))
            assert events[0]["kind"] == "serve-job-start"
            assert events[-1]["kind"] == "serve-job-end"
            assert events[-1]["state"] == "done"
            assert any(e["kind"] == "run-start" for e in events)
            assert any(e["kind"] == "round" for e in events)
            for event in events:
                validate_event(event)
            # serve-job events carry the content address, so a stream
            # consumer can correlate jobs with cache entries.
            assert events[0]["spec"] == job.key

    def test_cache_hit_job_has_empty_tape(self, tmp_path):
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            cold = manager.submit(make_spec())
            assert manager.wait(cold, timeout=30)
            warm = manager.submit(make_spec())
            assert list(iter_job_events(warm)) == []

    def test_external_observer_sees_tee_and_serve_metrics(self, tmp_path):
        sink = MemoryTraceSink()
        obs = Observer(MetricsRegistry(), sink)
        with JobManager(cache=None, workers=1, obs=obs) as manager:
            job = manager.submit(make_spec())
            assert manager.wait(job, timeout=30)
        kinds = {event["kind"] for event in sink.events}
        assert {"serve-job-start", "serve-job-end", "run-start"} <= kinds
        assert obs.registry.counter_value("serve.requests", label="simulate") == 1
        assert obs.registry.counter_value("serve.jobs", label="done") == 1
        hist = obs.registry.histogram("serve.job_wall_s", label="simulate")
        assert hist is not None and hist.count == 1
        # Engine metrics from inside the job merge into the same registry.
        assert (
            obs.registry.counter_value("round.transmissions", label="broadcast")
            > 0
        )

    def test_status_snapshot(self, tmp_path):
        with JobManager(cache=None, workers=1) as manager:
            job = manager.submit(make_spec())
            assert manager.wait(job, timeout=30)
            status = job.status()
            assert status.ok and status.kind == "simulate"
            assert status.events == job.num_events()
            assert status.result["kind"] == "broadcast-trace"
            stats = manager.stats()
            assert stats["executions"] == 1
            assert stats["jobs"] == {"done": 1}


class TestInProcessClient:
    def test_verbs_and_decode(self, tmp_path):
        with Client.local(cache=tmp_path / "cache", workers=1) as client:
            status = client.simulate(
                "broadcast",
                GRAPH,
                protocol={"kind": "decay"},
                seed=7,
                max_rounds=200,
            )
            assert status.ok and status.cache == "miss"
            trace = load_result(status)
            assert trace.completed and trace.num_rounds >= 1
            again = client.job(status.id)
            assert again.id == status.id and again.ok
            health = client.health()
            assert health["ok"] and health["executions"] == 1
            events = list(client.events(status.id))
            assert events[0]["kind"] == "serve-job-start"

    def test_gossip_process(self, tmp_path):
        with Client.local(workers=1) as client:
            status = client.simulate(
                "gossip",
                {"n": 16, "p": 0.4, "seed": 2},
                protocol={"kind": "uniform", "q": 0.2},
                seed=3,
                max_rounds=400,
            )
            assert status.ok
            assert status.result["kind"] == "gossip-trace"
            trace = load_result(status)
            assert trace.tokens == 16


class TestCancellation:
    def test_cancel_mid_run(self, tmp_path):
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            job = manager.submit(slow_spec())
            assert wait_for_running(job)
            assert manager.cancel(job.id) is job
            assert manager.wait(job, timeout=10)
            assert job.state == JOB_CANCELLED
            assert job.result is None
            assert job.key not in manager.cache  # never cached
            events = list(iter_job_events(job))
            assert events[-2]["kind"] == "serve-job-cancelled"
            assert events[-2]["state"] == JOB_CANCELLED
            assert events[-1]["kind"] == "serve-job-end"
            for event in events:
                validate_event(event)
            assert (
                manager.registry.counter_value(
                    "serve.cancellations", label="simulate"
                )
                == 1
            )

    def test_cancel_while_queued_never_executes(self, monkeypatch, tmp_path):
        release = threading.Event()
        started = threading.Event()
        executed = []

        def slow_execute(spec):
            started.set()
            executed.append(spec)
            release.wait(10)
            return {"schema_version": 1, "kind": "broadcast-trace"}

        monkeypatch.setattr("repro.serve.runner.execute_spec", slow_execute)
        with JobManager(cache=None, workers=1, max_pending=4) as manager:
            blocker = manager.submit(make_spec(seed=1))
            assert started.wait(10)
            queued = manager.submit(make_spec(seed=2))
            manager.cancel(queued.id)
            release.set()
            assert manager.wait(queued, timeout=10)
            assert queued.state == JOB_CANCELLED
            # Only the blocker reached the executor.
            assert len(executed) == 1
            assert manager.wait(blocker, timeout=10)

    def test_cancel_unknown_and_terminal_jobs(self, tmp_path):
        with JobManager(cache=None, workers=1) as manager:
            assert manager.cancel("nope") is None
            job = manager.submit(make_spec())
            assert manager.wait(job, timeout=30)
            manager.cancel(job.id)  # no-op on a terminal job
            assert job.state == "done"
            assert (
                manager.registry.counter_value(
                    "serve.cancellations", label="simulate"
                )
                == 0
            )


class TestDeadlines:
    def test_deadline_expiry_times_out_and_frees_the_slot(self, tmp_path):
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            doomed = manager.submit(slow_spec(deadline_s=0.2))
            assert manager.wait(doomed, timeout=30)
            assert doomed.state == JOB_TIMEOUT
            assert "deadline" in doomed.error
            assert doomed.key not in manager.cache
            # The worker slot is immediately reusable.
            follow = manager.submit(make_spec())
            assert manager.wait(follow, timeout=30)
            assert follow.state == "done"
            assert manager.registry.counter_value(
                "serve.jobs", label=JOB_TIMEOUT
            ) == 1

    def test_deadline_excluded_from_cache_identity(self, tmp_path):
        with JobManager(cache=tmp_path / "cache", workers=1) as manager:
            cold = manager.submit(make_spec())
            assert manager.wait(cold, timeout=30)
            warm = manager.submit(make_spec(deadline_s=120.0))
            assert warm.cache == "hit"
            assert canonical_json(cold.result) == canonical_json(warm.result)


class TestJournalIntegration:
    def test_lifecycle_writes_submit_then_terminal(self, tmp_path):
        journal_dir = tmp_path / "journal"
        with JobManager(
            cache=tmp_path / "cache", workers=1, journal=journal_dir
        ) as manager:
            job = manager.submit(make_spec())
            assert manager.wait(job, timeout=30)
        lines = (journal_dir / "journal.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["op"] for r in records] == ["submit", "terminal"]
        assert records[0]["key"] == job.key == records[1]["key"]
        assert records[1]["state"] == "done"

    def test_recover_replays_unpaired_submit(self, tmp_path):
        journal_dir = tmp_path / "journal"
        spec = make_spec()
        # Forge the crash: a submit record whose terminal never landed.
        JobJournal(journal_dir).record_submit(spec.cache_key(), spec.to_dict())
        with JobManager(
            cache=tmp_path / "cache", workers=1, journal=journal_dir
        ) as manager:
            replayed = manager.recover()
            assert len(replayed) == 1
            job = replayed[0]
            assert manager.wait(job, timeout=30)
            assert job.state == "done"
            assert job.key == spec.cache_key()
            assert (
                manager.registry.counter_value(
                    "serve.journal.recovered", label="simulate"
                )
                == 1
            )
        # The replay's terminal record paired the submit: a second
        # restart finds nothing incomplete.
        with JobManager(
            cache=tmp_path / "cache", workers=1, journal=journal_dir
        ) as again:
            assert again.recover() == []

    def test_recover_is_idempotent_via_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        journal_dir = tmp_path / "journal"
        spec = make_spec()
        with JobManager(cache=cache_dir, workers=1) as warmup:
            first = warmup.submit(spec)
            assert warmup.wait(first, timeout=30)
            truth = canonical_json(first.result)
        # Crash replay of a job whose result already reached the cache:
        # recover() is a cache hit, not a re-execution.
        JobJournal(journal_dir).record_submit(spec.cache_key(), spec.to_dict())
        with JobManager(
            cache=cache_dir, workers=1, journal=journal_dir
        ) as manager:
            (job,) = manager.recover()
            assert job.done.is_set() and job.cache == "hit"
            assert canonical_json(job.result) == truth
            assert manager.num_executions == 0

    def test_recover_fails_undecodable_spec_without_replaying(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal = JobJournal(journal_dir)
        journal.record_submit("deadbeef", {"kind": "simulate", "nonsense": 1})
        with JobManager(
            cache=None, workers=1, journal=journal_dir
        ) as manager:
            with pytest.warns(RuntimeWarning, match="no longer parses"):
                assert manager.recover() == []
        # The bad entry was terminalised so it never replays again.
        with JobManager(cache=None, workers=1, journal=journal_dir) as again:
            assert again.recover() == []


class TestDrain:
    def test_drain_finishes_inflight_and_refuses_new(self, monkeypatch, tmp_path):
        sink = MemoryTraceSink()
        obs = Observer(MetricsRegistry(), sink)
        release = threading.Event()
        started = threading.Event()

        def held_execute(spec):
            started.set()
            release.wait(10)
            return {"schema_version": 1, "kind": "broadcast-trace"}

        monkeypatch.setattr("repro.serve.runner.execute_spec", held_execute)
        with JobManager(cache=None, workers=1, obs=obs) as manager:
            job = manager.submit(make_spec())
            assert started.wait(10)
            # Release the worker only once the drain is underway, so the
            # job is deterministically still in flight when drain()
            # snapshots it (a fast job could otherwise finish first).
            threading.Timer(0.2, release.set).start()
            summary = manager.drain(budget_s=30.0)
            assert manager.wait(job, timeout=1)
            assert job.state == "done"
            assert summary["finished"] == 1 and summary["journaled"] == 0
            assert manager.draining
            with pytest.raises(ServerDrainingError, match="draining"):
                manager.submit(make_spec(seed=99))
        kinds = [event["kind"] for event in sink.events]
        assert "serve-drain-start" in kinds and "serve-drain-end" in kinds
        for event in sink.events:
            validate_event(event)
        hist = obs.registry.histogram("serve.drain_s")
        assert hist is not None and hist.count == 1

    def test_drain_journals_and_cancels_stragglers(self, tmp_path):
        journal_dir = tmp_path / "journal"
        with JobManager(
            cache=tmp_path / "cache", workers=1, journal=journal_dir
        ) as manager:
            job = manager.submit(slow_spec())
            assert wait_for_running(job)
            summary = manager.drain(budget_s=0.2)
            assert summary["journaled"] == 1 and summary["finished"] == 0
            # The straggler unwinds cooperatively...
            assert manager.wait(job, timeout=10)
            assert job.state == JOB_CANCELLED
        # ...but its submit record stays unpaired, so a restart would
        # pick the job back up.  (Inspect the journal directly — a real
        # recover() would re-execute the deliberately-endless spec.)
        entries = JobJournal(journal_dir).recover()
        assert [entry.key for entry in entries] == [job.key]
