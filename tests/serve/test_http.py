"""Integration tests for the asyncio HTTP job server.

One real server runs on a loopback port per fixture; requests go
through the HTTP :class:`~repro.serve.client.Client` (and raw
``http.client`` where the test is about wire details).
"""

import asyncio
import contextlib
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.errors import ServeError
from repro.obs.sinks import validate_event
from repro.schema import canonical_json
from repro.serve import Client, JobManager, JobSpec, ServeChaos, Server

GRAPH = {"n": 30, "p": 0.3, "seed": 1}
SIM_PAYLOAD = {
    "process": "broadcast",
    "graph": GRAPH,
    "params": {"protocol": {"kind": "decay"}},
    "seed": 7,
    "max_rounds": 200,
}


@pytest.fixture
def served(tmp_path):
    """A live server on an ephemeral port; yields (client, manager)."""
    manager = JobManager(cache=tmp_path / "cache", workers=2)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server = Server(manager=manager)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
    try:
        yield Client(server.address), manager
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        manager.shutdown()


@contextlib.contextmanager
def live_server(**server_kwargs):
    """A live server built with arbitrary kwargs; yields the Server."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server = Server(**server_kwargs)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        server.manager.shutdown()


def _raw(client: Client, method: str, path: str, body: dict | None = None):
    status, _headers, payload = _raw_full(client, method, path, body)
    return status, payload


def _raw_full(client: Client, method: str, path: str, body: dict | None = None):
    conn = HTTPConnection(client._transport.netloc, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        headers = dict(response.getheaders())
        return (
            response.status,
            headers,
            json.loads(response.read().decode() or "null"),
        )
    finally:
        conn.close()


class TestSimulateEndpoint:
    def test_cold_then_warm_byte_identical(self, served):
        client, manager = served
        cold = client.submit(JobSpec.from_dict(SIM_PAYLOAD))
        warm = client.submit(JobSpec.from_dict(SIM_PAYLOAD))
        assert cold.ok and warm.ok
        assert cold.cache == "miss" and warm.cache == "hit"
        # The acceptance bar: warm is served from the cache (hit metric,
        # no second execution) and the result JSON is byte-identical.
        assert canonical_json(cold.result) == canonical_json(warm.result)
        assert manager.num_executions == 1
        assert manager.registry.counter_value("serve.cache.hits") == 1

    def test_simulate_via_client_verb(self, served):
        client, _ = served
        status = client.simulate(
            "broadcast",
            GRAPH,
            protocol={"kind": "eg-randomized"},
            seed=3,
            max_rounds=400,
        )
        assert status.ok
        assert status.result["kind"] == "broadcast-trace"

    def test_wait_false_returns_immediately(self, served):
        client, _ = served
        status = client.simulate(
            "broadcast", GRAPH, protocol={"kind": "decay"}, seed=9, wait=False
        )
        assert status.state in ("queued", "running", "done")
        final = client.job(status.id, wait=True)
        assert final.ok

    def test_sweep_posted_to_simulate_is_rejected(self, served):
        client, _ = served
        status, payload = _raw(
            client, "POST", "/v1/simulate", {"experiments": ["E1"]}
        )
        assert status == 400
        assert "simulate" in payload["error"]


class TestJobEndpoints:
    def test_events_stream_is_schema_valid(self, served):
        client, _ = served
        status = client.simulate(
            "broadcast", GRAPH, protocol={"kind": "decay"}, seed=7, wait=False
        )
        events = list(client.events(status.id))  # follows to completion
        assert events[0]["kind"] == "serve-job-start"
        assert events[-1]["kind"] == "serve-job-end"
        for event in events:
            validate_event(event)

    def test_unknown_job_is_404(self, served):
        client, _ = served
        status, payload = _raw(client, "GET", "/v1/jobs/job-999999")
        assert status == 404
        assert "job-999999" in payload["error"]
        with pytest.raises(ServeError, match="404"):
            client.job("job-999999")

    def test_healthz(self, served):
        client, _ = served
        health = client.health()
        assert health["ok"] is True
        assert {"jobs", "executions", "cache"} <= set(health)


class TestWireDetails:
    def test_bad_json_body_is_400(self, served):
        client, _ = served
        conn = HTTPConnection(client._transport.netloc, timeout=30)
        try:
            conn.request("POST", "/v1/simulate", body=b"{nope")
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_unknown_route_is_404(self, served):
        client, _ = served
        status, _payload = _raw(client, "GET", "/v1/nope")
        assert status == 404

    def test_wrong_method_is_405(self, served):
        client, _ = served
        status, _payload = _raw(client, "GET", "/v1/simulate")
        assert status == 405
        status, _payload = _raw(client, "POST", "/v1/healthz", {})
        assert status == 405

    def test_unknown_spec_fields_are_400(self, served):
        client, _ = served
        status, payload = _raw(
            client, "POST", "/v1/simulate", {**SIM_PAYLOAD, "bogus": 1}
        )
        assert status == 400
        assert "bogus" in payload["error"]

    def test_failed_job_reports_error_state(self, served):
        client, _ = served
        status = client.simulate("nonsense", GRAPH, seed=1)
        assert status.state == "failed"
        assert status.error


class TestResilienceEndpoints:
    def test_readyz_flips_to_503_on_drain(self, served):
        client, manager = served
        status, headers, payload = _raw_full(client, "GET", "/v1/readyz")
        assert status == 200
        assert payload == {"ready": True, "draining": False}
        manager.drain(budget_s=5.0)
        status, headers, payload = _raw_full(client, "GET", "/v1/readyz")
        assert status == 503
        assert payload == {"ready": False, "draining": True}
        assert headers.get("Retry-After") == "1"

    def test_submit_during_drain_is_503_with_retry_after(self, served):
        client, manager = served
        manager.drain(budget_s=5.0)
        status, headers, payload = _raw_full(
            client, "POST", "/v1/simulate", SIM_PAYLOAD
        )
        assert status == 503
        assert headers.get("Retry-After") == "1"
        assert "draining" in payload["error"]
        # A non-retrying client surfaces the 503 as a ServeError.
        direct = Client(client._transport.netloc, retries=0)
        with pytest.raises(ServeError, match="503"):
            direct.submit(JobSpec.from_dict(SIM_PAYLOAD))

    def test_delete_cancels_via_client_verb(self, served):
        client, _ = served
        slow = {
            "process": "broadcast",
            "graph": {"n": 200, "p": 0.05, "seed": 3},
            "params": {"protocol": {"kind": "uniform", "q": 1e-9}},
            "seed": 11,
            "max_rounds": 50_000_000,
        }
        status = client.submit(JobSpec.from_dict(slow), wait=False)
        final = client.cancel(status.id, wait=True)
        assert final.state == "cancelled"
        assert final.done and not final.ok

    def test_delete_unknown_job_is_404(self, served):
        client, _ = served
        status, _payload = _raw(client, "DELETE", "/v1/jobs/job-999999")
        assert status == 404

    def test_deadline_over_http_times_out(self, served):
        client, _ = served
        status = client.simulate(
            "broadcast",
            {"n": 200, "p": 0.05, "seed": 3},
            protocol={"kind": "uniform", "q": 1e-9},
            seed=11,
            max_rounds=50_000_000,
            deadline_s=0.2,
        )
        assert status.state == "timeout"
        assert "deadline" in status.error


class TestClientRetries:
    def test_client_survives_reset_connections(self, tmp_path):
        chaos = ServeChaos(tmp_path / "chaos", reset_connections=2)
        with live_server(cache=tmp_path / "cache", chaos=chaos) as server:
            client = Client(server.address, backoff_s=0.01)
            status = client.submit(JobSpec.from_dict(SIM_PAYLOAD))
            assert status.ok and status.result is not None
            assert client._transport.retried == 2
        # The counter records every consulted connection: two aborted
        # plus the one that finally got through.
        counter = tmp_path / "chaos" / "serve-reset.count"
        assert counter.read_text() == "3"

    def test_retries_exhausted_raises(self, tmp_path):
        chaos = ServeChaos(tmp_path / "chaos", reset_connections=100)
        with live_server(cache=None, chaos=chaos) as server:
            client = Client(server.address, retries=1, backoff_s=0.01)
            with pytest.raises(ServeError, match="2 attempt"):
                client.health()
            assert client._transport.retried == 1
