"""Unit tests for the job-server wire types and their canonical forms."""

import pytest

from repro.errors import InvalidParameterError
from repro.serve.types import (
    JOB_SCHEMA_VERSION,
    JobSpec,
    JobStatus,
    SweepSpec,
    spec_from_dict,
)

GRAPH = {"n": 40, "p": 0.3, "seed": 1}


def make_spec(**overrides) -> JobSpec:
    fields = dict(
        process="broadcast",
        graph=dict(GRAPH),
        params={"protocol": {"kind": "decay"}},
        seed=7,
        max_rounds=200,
    )
    fields.update(overrides)
    return JobSpec(**fields)


class TestJobSpec:
    def test_round_trip(self):
        spec = make_spec()
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.cache_key() == spec.cache_key()

    def test_cache_key_is_content_addressed(self):
        assert make_spec().cache_key() == make_spec().cache_key()
        assert make_spec(seed=8).cache_key() != make_spec().cache_key()
        assert (
            make_spec(params={"protocol": {"kind": "uniform", "q": 0.1}}).cache_key()
            != make_spec().cache_key()
        )

    def test_backend_excluded_from_key(self):
        # Backends are bit-identical, so they must not split the cache.
        assert (
            make_spec(backend="numpy").cache_key() == make_spec().cache_key()
        )
        assert "backend" not in make_spec(backend="numpy").canonical()

    def test_unknown_fields_rejected(self):
        payload = make_spec().to_dict()
        payload["bogus"] = 1
        with pytest.raises(InvalidParameterError, match="unknown fields"):
            JobSpec.from_dict(payload)

    def test_wrong_schema_version_rejected(self):
        payload = make_spec().to_dict()
        payload["schema_version"] = JOB_SCHEMA_VERSION + 1
        with pytest.raises(InvalidParameterError, match="schema_version"):
            JobSpec.from_dict(payload)

    def test_non_jsonable_params_rejected(self):
        with pytest.raises(InvalidParameterError, match="JSON-typed"):
            make_spec(params={"x": object()})
        with pytest.raises(InvalidParameterError, match="finite"):
            make_spec(params={"x": float("inf")})

    def test_protocol_must_be_mapping(self):
        with pytest.raises(InvalidParameterError, match="protocol"):
            make_spec(params={"protocol": "decay"})

    def test_missing_process_rejected(self):
        with pytest.raises(InvalidParameterError, match="process"):
            JobSpec.from_dict({"graph": dict(GRAPH)})

    def test_deadline_round_trips(self):
        spec = make_spec(deadline_s=2.5)
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec and again.deadline_s == 2.5

    def test_deadline_excluded_from_key(self):
        # A deadline budgets the execution; it must not split the cache —
        # a completed job is identical whatever its budget was.
        assert make_spec(deadline_s=5.0).cache_key() == make_spec().cache_key()
        assert "deadline_s" not in make_spec(deadline_s=5.0).canonical()

    @pytest.mark.parametrize(
        "bad", [0, -1.0, float("inf"), float("nan"), True, "10"]
    )
    def test_invalid_deadlines_rejected(self, bad):
        with pytest.raises(InvalidParameterError, match="deadline_s"):
            make_spec(deadline_s=bad)


class TestSweepSpec:
    def test_round_trip(self):
        spec = SweepSpec(experiments=("E1", "E2"), quick=True, seed=3, jobs=2)
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_jobs_excluded_from_key(self):
        # jobs=1 and jobs=N are byte-identical, so parallelism must not
        # split the cache.
        one = SweepSpec(experiments=("E1",), jobs=1)
        four = SweepSpec(experiments=("E1",), jobs=4)
        assert one.cache_key() == four.cache_key()
        assert (
            one.cache_key() != SweepSpec(experiments=("E1",), seed=9).cache_key()
        )

    def test_needs_experiments(self):
        with pytest.raises(InvalidParameterError, match="experiment"):
            SweepSpec(experiments=())


class TestSpecFromDict:
    def test_discriminates_on_experiments_field(self):
        assert isinstance(
            spec_from_dict({"experiments": ["E1"]}), SweepSpec
        )
        assert isinstance(
            spec_from_dict({"process": "broadcast", "graph": dict(GRAPH)}),
            JobSpec,
        )


class TestJobStatus:
    def test_round_trip(self):
        status = JobStatus(
            id="job-000001",
            kind="simulate",
            state="done",
            spec=make_spec().to_dict(),
            cache="hit",
            elapsed_s=0.5,
            events=12,
            result={"kind": "broadcast-trace"},
        )
        again = JobStatus.from_dict(status.to_dict())
        assert again == status
        assert again.done and again.ok

    def test_failed_is_done_but_not_ok(self):
        status = JobStatus(
            id="j", kind="simulate", state="failed", spec={}, error="boom"
        )
        assert status.done and not status.ok

    @pytest.mark.parametrize("state", ["cancelled", "timeout"])
    def test_cancelled_and_timeout_are_terminal(self, state):
        status = JobStatus(
            id="j", kind="simulate", state=state, spec={}, error="stopped"
        )
        assert status.done and not status.ok

    def test_running_is_not_done(self):
        status = JobStatus(id="j", kind="simulate", state="running", spec={})
        assert not status.done
