"""Serve-chaos acceptance: resilience promises proven on real processes.

The deterministic harness (:class:`repro.serve.ServeChaos`) pins a job
in flight long enough for the test to SIGKILL the server, then the
restarted process — same cache and journal directories — must replay
the job from its journal and produce the byte-identical result.  The
unit half of this file covers the harness itself; the subprocess half
is the acceptance bar the CI serve-chaos job re-runs against a packaged
server.
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.schema import canonical_json
from repro.serve import (
    Client,
    JobJournal,
    JobSpec,
    ServeChaos,
    load_serve_chaos,
    save_serve_chaos,
)
from repro.serve.runner import execute_spec

SPEC_PAYLOAD = {
    "process": "broadcast",
    "graph": {"n": 30, "p": 0.3, "seed": 1},
    "params": {"protocol": {"kind": "decay"}},
    "seed": 7,
    "max_rounds": 200,
}

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


class TestHarness:
    def test_counters_survive_process_death(self, tmp_path):
        # Two instances over one state_dir stand in for the server
        # before and after a kill: the schedule resumes, not replays.
        first = ServeChaos(tmp_path, hold_jobs=1, hold_s=0.0)
        first.on_execute()  # consumes the single hold
        second = ServeChaos(tmp_path, hold_jobs=1, hold_s=0.0)
        t0 = time.monotonic()
        second.on_execute()  # already spent: must not sleep
        assert time.monotonic() - t0 < 0.5
        assert (tmp_path / "serve-hold.count").read_text() == "2"

    def test_connection_schedule(self, tmp_path):
        chaos = ServeChaos(tmp_path, reset_connections=2)
        assert chaos.on_connection() is True
        assert chaos.on_connection() is True
        assert chaos.on_connection() is False

    def test_zero_schedule_is_free(self, tmp_path):
        chaos = ServeChaos(tmp_path)
        chaos.on_execute()
        assert chaos.on_connection() is False
        assert list(tmp_path.glob("*.count")) == []  # no counter files

    def test_negative_counts_rejected(self, tmp_path):
        with pytest.raises(ValueError, match=">= 0"):
            ServeChaos(tmp_path, hold_jobs=-1)

    def test_spec_file_round_trip(self, tmp_path):
        path = save_serve_chaos(
            tmp_path / "chaos.json",
            tmp_path / "state",
            hold_jobs=3,
            hold_s=1.5,
            reset_connections=2,
        )
        chaos = load_serve_chaos(path)
        assert chaos.state_dir == tmp_path / "state"
        assert chaos.hold_jobs == 3
        assert chaos.hold_s == 1.5
        assert chaos.reset_connections == 2


def _start_server(tmp_path: Path, log_name: str, *extra: str):
    """One `repro serve` subprocess on an ephemeral port; returns
    (process, base_url) once the listener has announced itself."""
    log_path = tmp_path / log_name
    env = {
        **os.environ,
        "PYTHONPATH": SRC_DIR + os.pathsep + os.environ.get("PYTHONPATH", ""),
        "PYTHONUNBUFFERED": "1",
    }
    with open(log_path, "wb") as log:
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--cache",
                str(tmp_path / "cache"),
                *extra,
            ],
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
        )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        match = re.search(
            rb"serving on (http://[\d.:]+)", log_path.read_bytes()
        )
        if match:
            return process, match.group(1).decode()
        if process.poll() is not None:
            raise AssertionError(
                f"server died at startup:\n{log_path.read_text()}"
            )
        time.sleep(0.05)
    process.kill()
    raise AssertionError(f"server never came up:\n{log_path.read_text()}")


def _wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.mark.slow
class TestKillRestartReplay:
    def test_sigkill_mid_job_replays_byte_identically(self, tmp_path):
        spec = JobSpec.from_dict(SPEC_PAYLOAD)
        reference = canonical_json(execute_spec(spec))
        chaos_spec = save_serve_chaos(
            tmp_path / "chaos.json",
            tmp_path / "chaos-state",
            hold_jobs=1,
            hold_s=300.0,
        )
        hold_counter = tmp_path / "chaos-state" / "serve-hold.count"
        journal = JobJournal(tmp_path / "cache", fsync=False)

        server, url = _start_server(
            tmp_path, "serve-1.log", "--chaos", str(chaos_spec)
        )
        try:
            client = Client(url, backoff_s=0.05)
            queued = client.submit(spec, wait=False)
            assert not queued.done
            # The hold counter appears the moment the execution reaches
            # the worker — by then its submit record is journaled and
            # the worker is pinned in the 300 s hold.  Kill it there.
            _wait_for(hold_counter.exists, message="the held execution")
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()

        # The corpse left an unpaired submit in the journal.
        assert b'"op":"submit"' in journal.path.read_bytes()
        assert b'"op":"terminal"' not in journal.path.read_bytes()

        # Restart against the same cache/journal: the hold is already
        # consumed, so recovery replays the job unheld, before serving.
        server, url = _start_server(
            tmp_path, "serve-2.log", "--chaos", str(chaos_spec)
        )
        try:
            client = Client(url, backoff_s=0.05)
            # An identical submit coalesces with the in-flight replay or
            # hits the cache it filled — either way, the same bytes.
            replayed = client.submit(spec, wait=True)
            assert replayed.ok
            assert canonical_json(replayed.result) == reference
            health = client.health()
            assert health["jobs"].get("done", 0) >= 1
        finally:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(timeout=30)
            finally:
                if server.poll() is None:
                    server.kill()

        # With the terminal record landed, a third recovery is a no-op.
        assert journal.recover() == []


@pytest.mark.slow
class TestGracefulDrain:
    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        server, url = _start_server(tmp_path, "serve.log", "--drain-s", "10")
        client = Client(url, backoff_s=0.05)
        try:
            done = client.submit(JobSpec.from_dict(SPEC_PAYLOAD), wait=True)
            assert done.ok
            server.send_signal(signal.SIGTERM)
            assert server.wait(timeout=30) == 0
        finally:
            if server.poll() is None:
                server.kill()
        log = (tmp_path / "serve.log").read_text()
        assert "serving on" in log
