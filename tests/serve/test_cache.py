"""Unit tests for the content-addressed result cache."""

import json

import pytest

from repro.serve.cache import ResultCache
from repro.serve.types import JobSpec

SPEC = JobSpec(
    process="broadcast",
    graph={"n": 30, "p": 0.3, "seed": 1},
    params={"protocol": {"kind": "decay"}},
    seed=5,
)
RESULT = {"schema_version": 1, "kind": "broadcast-trace", "n": 30}


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = SPEC.cache_key()
        assert cache.get(key) is None
        assert key not in cache
        cache.put(key, RESULT)
        assert cache.get(key) == RESULT
        assert key in cache
        assert len(cache) == 1

    def test_fanout_layout(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = SPEC.cache_key()
        cache.put(key, RESULT)
        path = cache.path_for(key)
        assert path.parent.name == key[:2]
        assert path.exists()

    def test_corrupt_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = SPEC.cache_key()
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) is None  # miss, not an exception
        assert not path.exists()
        corpses = list((tmp_path / "cache").rglob("*.corrupt"))
        assert len(corpses) == 1
        # The slot is reusable after quarantine.
        cache.put(key, RESULT)
        assert cache.get(key) == RESULT

    def test_wrong_key_entry_quarantined(self, tmp_path):
        # A tampered entry whose embedded key disagrees with its address
        # must not be served.
        cache = ResultCache(tmp_path / "cache")
        key = SPEC.cache_key()
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {"schema_version": 1, "key": "0" * 64, "result": RESULT}
            )
        )
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) is None
        assert list((tmp_path / "cache").rglob("*.corrupt"))

    def test_truncated_entry_from_crash_mid_write_quarantined(self, tmp_path):
        # A process killed mid-write leaves a prefix of the entry: valid
        # UTF-8, invalid JSON.  It must read as a miss, never a crash.
        cache = ResultCache(tmp_path / "cache")
        key = SPEC.cache_key()
        cache.put(key, RESULT)
        path = cache.path_for(key)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) is None
        assert key not in cache
        assert list((tmp_path / "cache").rglob("*.corrupt"))
        # The slot refills and serves again.
        cache.put(key, RESULT)
        assert cache.get(key) == RESULT

    def test_wrong_schema_version_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = SPEC.cache_key()
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"schema_version": 999, "key": key, "result": RESULT})
        )
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) is None
        assert list((tmp_path / "cache").rglob("*.corrupt"))
