"""Shared fixtures: canonical small graphs and seeded RNGs.

All stochastic tests derive their streams from fixed seeds so the suite is
deterministic; tolerance choices reference the paper's Chernoff machinery
(see repro.theory.concentration) rather than hand-tuned margins where the
assertion is probabilistic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Adjacency,
    complete_graph,
    cycle_graph,
    gnp_connected,
    path_graph,
    star_graph,
)


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def triangle():
    """K3: the smallest graph where every pair collides at the third node."""
    return Adjacency.from_edges(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path5():
    """Path 0-1-2-3-4."""
    return path_graph(5)


@pytest.fixture
def star10():
    """Star with hub 0 and 9 leaves — maximal collision pressure."""
    return star_graph(10)


@pytest.fixture
def cycle6():
    """Even cycle: the antipodal node's two parents always collide."""
    return cycle_graph(6)


@pytest.fixture
def k5():
    return complete_graph(5)


@pytest.fixture(scope="session")
def gnp_medium():
    """One connected G(400, 0.04) shared across the session (read-only)."""
    return gnp_connected(400, 0.04, seed=777)


@pytest.fixture(scope="session")
def gnp_small():
    """One connected G(120, 0.1) shared across the session (read-only)."""
    return gnp_connected(120, 0.1, seed=778)
