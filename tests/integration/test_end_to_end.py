"""End-to-end integration tests across module boundaries.

Each test exercises a realistic multi-module pipeline — the same paths the
examples and benchmarks take — rather than a single unit.
"""

import math

import numpy as np
import pytest

from repro import (
    DecayProtocol,
    EGRandomizedProtocol,
    ElsasserGasieniecScheduler,
    GreedyCoverScheduler,
    RadioNetwork,
    gnp_connected,
    simulate_broadcast,
)
from repro.graphs import LayerDecomposition, diameter
from repro.lowerbounds import (
    best_oblivious_time,
    oblivious_candidates,
    relaxed_schedule_survivors,
    sample_transmit_sets,
)
from repro.radio import execute_schedule, repeat_broadcast, verify_schedule
from repro.singleport import push_broadcast
from repro.theory.bounds import centralized_bound, distributed_bound
from repro.theory.fitting import linear_fit


@pytest.fixture(scope="module")
def workload():
    """A mid-size supercritical G(n, p) and its radio network."""
    n = 600
    p = 4 * math.log(n) / n
    g = gnp_connected(n, p, seed=99)
    return g, RadioNetwork(g), n, p


class TestCentralizedPipeline:
    def test_schedule_build_execute_verify(self, workload):
        g, net, n, p = workload
        schedule = ElsasserGasieniecScheduler(seed=0).build(g, 0)
        assert verify_schedule(net, schedule, 0)
        trace = execute_schedule(net, schedule, 0, mode="filter")
        assert trace.completed
        # The measured completion matches the schedule's intent: within a
        # small multiple of the theorem's expression.
        assert trace.completion_round <= 6 * centralized_bound(n, p)

    def test_centralized_beats_distributed_on_same_graph(self, workload):
        g, net, n, p = workload
        schedule = ElsasserGasieniecScheduler(seed=1).build(g, 0)
        dist_times = repeat_broadcast(
            net, EGRandomizedProtocol(n, p), repetitions=5, seed=2, p=p
        )
        # Full topology knowledge must not lose to no knowledge.
        assert len(schedule) <= float(np.mean(dist_times))

    def test_schedulers_agree_on_completion(self, workload):
        g, net, n, p = workload
        for scheduler in (
            ElsasserGasieniecScheduler(seed=3),
            GreedyCoverScheduler(seed=3),
        ):
            assert verify_schedule(net, scheduler.build(g, 0), 0)


class TestDistributedPipeline:
    def test_protocol_hierarchy(self, workload):
        """EG <= Decay on G(n,p) — the paper's headline comparison."""
        g, net, n, p = workload
        eg = repeat_broadcast(net, EGRandomizedProtocol(n, p), repetitions=5, seed=4, p=p)
        decay = repeat_broadcast(net, DecayProtocol(n), repetitions=5, seed=5)
        assert np.mean(eg) < np.mean(decay)

    def test_distributed_time_near_ln_n(self, workload):
        g, net, n, p = workload
        times = repeat_broadcast(net, EGRandomizedProtocol(n, p), repetitions=8, seed=6, p=p)
        assert np.mean(times) < 8 * distributed_bound(n)
        # And can't beat the diameter.
        assert np.min(times) >= diameter(g, exact_limit=1000)

    def test_scaling_fit_recovers_log_growth(self):
        """Mini E4: three sizes, fit against ln n, expect positive slope."""
        times = []
        ns = [128, 512, 2048]
        for i, n in enumerate(ns):
            p = 4 * math.log(n) / n
            g = gnp_connected(n, p, seed=100 + i)
            t = repeat_broadcast(
                RadioNetwork(g), EGRandomizedProtocol(n, p),
                repetitions=6, seed=i, p=p,
            )
            times.append(float(np.mean(t)))
        fit = linear_fit(np.log(ns), np.array(times), "ln n")
        assert fit.slope > 0


class TestLowerBoundPipeline:
    def test_relaxed_adversary_consistent_with_real_broadcast(self, workload):
        """Relaxed-rule survivors over-approximate real-schedule reach."""
        g, net, n, p = workload
        sets = sample_transmit_sets(n, 5, set_size=n // 20, seed=7)
        survivors = relaxed_schedule_survivors(g, sets, 0)
        # Replaying the same sets as a *real* permissive schedule can only
        # inform fewer nodes (relaxed reception is adversary-friendly).
        from repro.radio import Schedule

        schedule = Schedule(n, [s for s in sets])
        trace = execute_schedule(net, schedule, 0, mode="permissive", stop_when_complete=False)
        real_uninformed = np.flatnonzero(~trace.informed)
        # Every node the relaxed model fails to inform, minus the source
        # neighbourhood it pre-informs, must also be uninformed for real.
        pre = set([0] + [int(v) for v in g.neighbors(0)])
        assert set(int(v) for v in real_uninformed) - pre >= set(
            int(v) for v in survivors
        ) - pre

    def test_oblivious_family_cannot_beat_eg_by_much(self, workload):
        g, net, n, p = workload
        best, _, _ = best_oblivious_time(
            net, oblivious_candidates(n, p), trials=2, seed=8
        )
        eg = float(
            np.mean(repeat_broadcast(net, EGRandomizedProtocol(n, p), repetitions=4, seed=9, p=p))
        )
        # EG is a member of the family (up to constants): best <= eg and
        # best is still Omega(ln n).
        assert best <= eg * 1.5
        assert best >= 0.5 * math.log(n)


class TestStructurePipeline:
    def test_layers_feed_scheduler_consistently(self, workload):
        g, net, n, p = workload
        ld = LayerDecomposition(g, 0)
        # Scheduler flood length is within a couple of the layer depth.
        schedule = ElsasserGasieniecScheduler(seed=10).build(g, 0)
        flood_rounds = schedule.phase_lengths().get("flood", 0)
        assert flood_rounds <= ld.depth + 2

    def test_model_separation_same_graph(self, workload):
        g, net, n, p = workload
        radio = simulate_broadcast(net, EGRandomizedProtocol(n, p), seed=11, p=p)
        push = push_broadcast(g, 0, seed=12)
        assert radio.completed and push.completed
        # Both Θ(ln n): within 4x of each other at this size.
        ratio = radio.completion_round / push.completion_round
        assert 0.25 < ratio < 4.0
