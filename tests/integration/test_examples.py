"""Smoke tests for the example scripts.

All examples must at least compile (cheap API-drift detector); the two
fastest also run end-to-end as subprocesses so the documented entry
points stay genuinely executable.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ["quickstart.py", "centralized_scheduling.py"]


def test_examples_directory_populated():
    names = {p.name for p in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 6


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_reports_completion():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "broadcast completed" in proc.stdout
    assert "informed curve" in proc.stdout
