"""The unified dissemination core.

Three layers of protection for the engine refactor:

* **Golden digests** — every dynamics (broadcast, gossip, multimessage,
  push, push-pull, agents, faulty broadcast) is pinned to a digest of its
  full trace on a fixed seed, captured from the pre-refactor per-process
  loops.  Any change to RNG consumption, round accounting, or trace
  assembly flips a digest.
* **Cross-dynamics identities** — ``simulate_multimessage`` with one
  token is broadcast, round for round.
* **Driver semantics** — fault-plan gating, registry population, and the
  batch/serial bit-for-bit equivalence of the gossip-family engines.
"""

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.backends import available_backend_names, use_backend
from repro.broadcast.distributed import DecayProtocol, UniformProtocol
from repro.errors import BroadcastIncompleteError, InvalidParameterError
from repro.faults import (
    AdversarialJammer,
    ChurnSchedule,
    CrashSchedule,
    FaultPlan,
    LossyLinkModel,
    SpuriousNoiseModel,
    simulate_broadcast_faulty,
)
from repro.gossip import (
    run_gossip_batch,
    run_multimessage_batch,
    simulate_gossip,
    simulate_multimessage,
)
from repro.graphs import gnp_connected, star_graph
from repro.radio import (
    DYNAMICS_REGISTRY,
    FunctionProtocol,
    RadioNetwork,
    simulate_broadcast,
)
from repro.rng import spawn_generators
from repro.singleport import agent_broadcast, push_broadcast, push_pull_broadcast


def trace_digest(trace) -> str:
    """Order-sensitive digest of every record field and final array."""
    h = hashlib.sha256()
    for rec in trace.records:
        h.update(repr(dataclasses.astuple(rec)).encode())
    for name in ("informed", "informed_round", "informer", "knowledge_counts"):
        arr = getattr(trace, name, None)
        if arr is not None:
            h.update(np.asarray(arr).tobytes())
    return h.hexdigest()[:16]


@pytest.fixture(scope="module")
def g64():
    return gnp_connected(64, 0.2, seed=1)


@pytest.fixture(scope="module")
def net64(g64):
    return RadioNetwork(g64)


@pytest.fixture(scope="module")
def net96():
    return RadioNetwork(gnp_connected(96, 0.15, seed=50))


@pytest.fixture(scope="module")
def net48():
    return RadioNetwork(gnp_connected(48, 0.25, seed=5))


class TestGoldenTraces:
    """Digests captured from the pre-refactor bespoke round loops.

    Parameterized over every *available* kernel backend: the digests are
    backend-invariant (identical integer neighbour counts mean identical
    RNG consumption and trajectories), so a compiled backend that flips
    one of these digests is a backend bug, not a new golden value.
    """

    @pytest.fixture(autouse=True, params=available_backend_names())
    def _backend(self, request):
        with use_backend(request.param):
            yield request.param

    def test_gossip_uniform(self, net48):
        trace = simulate_gossip(net48, UniformProtocol(0.1), seed=6)
        assert trace_digest(trace) == "75e19449f4ad97c6"

    def test_gossip_decay(self):
        trace = simulate_gossip(RadioNetwork(star_graph(10)), DecayProtocol(10), seed=4)
        assert trace_digest(trace) == "6533657490c5e8d3"

    def test_multimessage_k3(self, net96):
        trace = simulate_multimessage(net96, UniformProtocol(0.1), [0, 10, 20], seed=4)
        assert trace_digest(trace) == "35b0d92d232a164d"

    def test_multimessage_k1(self, net96):
        trace = simulate_multimessage(net96, UniformProtocol(0.1), [0], seed=1)
        assert trace_digest(trace) == "aff7d3328efe0c02"

    def test_push(self, g64):
        assert trace_digest(push_broadcast(g64, 0, seed=7)) == "ddcffa886c2762d7"

    def test_push_pull(self, g64):
        assert trace_digest(push_pull_broadcast(g64, 0, seed=8)) == "91d2125dffe0ac4a"

    def test_agents(self, g64):
        assert trace_digest(agent_broadcast(g64, 8, 0, seed=9)) == "349406b9b3da92e6"

    def test_broadcast(self, net64):
        trace = simulate_broadcast(net64, UniformProtocol(0.2), seed=3)
        assert trace_digest(trace) == "8e0bcc7de8081ae7"

    def test_broadcast_faulty(self, g64, net64):
        plan = FaultPlan(
            crashes=CrashSchedule.random(64, 0.1, 30, seed=100, protect=[0]),
            churn=ChurnSchedule.random(
                64, 0.3, 60, mean_downtime=10.0, seed=101, protect=[0]
            ),
            links=LossyLinkModel(g64, 0.9),
            jammer=AdversarialJammer(g64, 3, strategy="random", exclude=[0]),
            noise=SpuriousNoiseModel.random(64, 0.1, 0.2, seed=102, protect=[0]),
        )
        trace = simulate_broadcast_faulty(
            net64, DecayProtocol(64), plan=plan, seed=5, max_rounds=2000
        )
        assert trace_digest(trace) == "5f8cc7d5132b3f36"


class TestOneTokenIsBroadcast:
    """With a single token the continuum endpoint is exactly broadcast."""

    @pytest.mark.parametrize("make_protocol", [lambda: UniformProtocol(0.15), lambda: DecayProtocol(64)])
    @pytest.mark.parametrize("seed", [2, 13])
    def test_round_for_round(self, net64, make_protocol, seed):
        bcast = simulate_broadcast(net64, make_protocol(), source=5, seed=seed)
        multi = simulate_multimessage(net64, make_protocol(), [5], seed=seed)
        assert multi.completion_round == bcast.completion_round
        assert [r.num_transmitters for r in multi.records] == [
            r.num_transmitters for r in bcast.records
        ]
        # informed count after each round == (node, token) pairs known
        assert [r.pairs_known for r in multi.records] == [
            r.informed_after for r in bcast.records
        ]


class TestDriverSemantics:
    def test_registry_names(self):
        import repro.gossip  # noqa: F401
        import repro.singleport  # noqa: F401

        names = set(DYNAMICS_REGISTRY)
        assert {
            "broadcast",
            "gossip",
            "multimessage",
            "push",
            "push-pull",
            "agents",
        } <= names
        for cls in DYNAMICS_REGISTRY.values():
            assert cls.summary

    def test_active_plan_rejected_by_faultless_dynamics(self, g64):
        from repro.radio.dynamics import run_dissemination
        from repro.singleport.push import PushDynamics

        plan = FaultPlan(crashes=CrashSchedule.random(64, 0.2, 10, seed=3, protect=[0]))
        with pytest.raises(InvalidParameterError, match="fault"):
            run_dissemination(
                RadioNetwork(g64), PushDynamics(0), plan=plan, seed=1
            )

    def test_null_plan_matches_healthy(self, net48):
        healthy = simulate_gossip(net48, UniformProtocol(0.1), seed=6)
        null = simulate_gossip(net48, UniformProtocol(0.1), seed=6, faults=FaultPlan())
        assert trace_digest(null) == trace_digest(healthy)

    def test_multimessage_source_validation(self, net64):
        with pytest.raises(InvalidParameterError):
            simulate_multimessage(net64, UniformProtocol(0.1), [], seed=1)
        with pytest.raises(InvalidParameterError):
            simulate_multimessage(net64, UniformProtocol(0.1), [0, 99], seed=1)


class TestGossipUnderFaults:
    """Satellite of the refactor: the gossip family gains FaultPlan support."""

    def test_gossip_with_crashes_completes_on_survivors(self, net48):
        plan = FaultPlan(
            crashes=CrashSchedule.random(48, 0.15, 20, seed=7, protect=[0])
        )
        trace = simulate_gossip(
            net48, UniformProtocol(0.1), seed=3, faults=plan, max_rounds=5000
        )
        # Dead nodes' rumors are excluded from the deliverable set; the
        # run completes relative to the surviving target.
        assert trace.completed
        assert trace.num_tokens in (None, 48)

    def test_multimessage_with_full_plan(self, g64, net64):
        plan = FaultPlan(
            crashes=CrashSchedule.random(64, 0.08, 40, seed=21, protect=[0, 7]),
            links=LossyLinkModel(g64, 0.95),
            noise=SpuriousNoiseModel.random(64, 0.05, 0.1, seed=22, protect=[0, 7]),
        )
        trace = simulate_multimessage(
            net64,
            UniformProtocol(0.15),
            [0, 7],
            seed=9,
            faults=plan,
            max_rounds=8000,
        )
        assert trace.completed

    def test_incomplete_gossip_keeps_trace(self, net48):
        with pytest.raises(BroadcastIncompleteError) as exc_info:
            simulate_gossip(net48, UniformProtocol(0.1), seed=6, max_rounds=3)
        trace = exc_info.value.trace
        assert trace is not None and trace.num_rounds == 3
        assert trace.knowledge_counts is not None


class TestBatchSerialEquivalence:
    """The lockstep gossip-family engines are bit-for-bit serial."""

    @pytest.mark.parametrize("make_protocol", [lambda: UniformProtocol(0.1), lambda: DecayProtocol(48)])
    def test_gossip_batch(self, net48, make_protocol):
        reps, seed = 4, 17
        batch = run_gossip_batch(
            net48,
            make_protocol(),
            repetitions=reps,
            seed=seed,
            with_first_complete=True,
        )
        for r, rng in enumerate(spawn_generators(seed, reps)):
            trace = simulate_gossip(net48, make_protocol(), seed=rng)
            assert batch.completion_rounds[r] == trace.completion_round
            assert (
                batch.first_complete_rounds[r]
                == trace.rounds_until_first_complete_node()
            )

    def test_multimessage_batch(self, net96):
        reps, seed, sources = 4, 23, [3, 40, 77]
        batch = run_multimessage_batch(
            net96, UniformProtocol(0.1), sources, repetitions=reps, seed=seed
        )
        for r, rng in enumerate(spawn_generators(seed, reps)):
            trace = simulate_multimessage(net96, UniformProtocol(0.1), sources, seed=rng)
            assert batch.completion_rounds[r] == trace.completion_round

    def test_budget_miss_reports_fractions(self, net48):
        batch = run_gossip_batch(
            net48, UniformProtocol(0.1), repetitions=3, seed=5, max_rounds=4
        )
        assert np.all(np.isinf(batch.completion_rounds))
        assert np.all((batch.knowledge_fractions > 0) & (batch.knowledge_fractions < 1))

    def test_serial_dispatch_matches_batch(self, net48):
        """gossip_times on a non-batchable protocol equals the batch path."""
        from repro.experiments.runner import gossip_times

        uniform = UniformProtocol(0.1)
        proxy = FunctionProtocol(uniform.transmit_mask, name="serial-uniform")
        proxy.prepare = uniform.prepare
        fast = gossip_times(net48, uniform, repetitions=3, seed=31)
        slow = gossip_times(net48, proxy, repetitions=3, seed=31)
        assert np.array_equal(fast, slow)
