"""Unit tests for broadcast traces."""

import numpy as np
import pytest

from repro.radio.trace import BroadcastTrace, RoundRecord


def make_trace(n=4, rounds=((1, 1), (2, 2)), complete=True):
    """Trace helper: rounds as (num_new, informed_after_increment) tuples."""
    trace = BroadcastTrace(source=0, n=n)
    informed = np.zeros(n, dtype=bool)
    informed[0] = True
    informed_round = np.full(n, -1, dtype=np.int64)
    informed_round[0] = 0
    count = 1
    nxt = 1
    for t, (new, _) in enumerate(rounds, start=1):
        for _ in range(new):
            if nxt < n:
                informed[nxt] = True
                informed_round[nxt] = t
                nxt += 1
        count = int(informed.sum())
        trace.records.append(
            RoundRecord(
                round_index=t,
                num_transmitters=1,
                num_new=new,
                num_collided=0,
                informed_after=count,
            )
        )
    if not complete:
        informed[-1] = False
        informed_round[-1] = -1
    trace.informed = informed
    trace.informed_round = informed_round
    return trace


class TestBasics:
    def test_complete_trace(self):
        trace = make_trace(4, rounds=((1, 0), (2, 0)))
        assert trace.completed
        assert trace.num_rounds == 2
        assert trace.num_informed == 4
        assert trace.completion_round == 2

    def test_incomplete_trace(self):
        trace = make_trace(4, rounds=((1, 0),), complete=False)
        assert not trace.completed
        with pytest.raises(ValueError, match="did not complete"):
            trace.completion_round

    def test_empty_informed(self):
        trace = BroadcastTrace(source=0, n=3)
        assert trace.num_informed == 0
        assert not trace.completed

    def test_totals(self):
        trace = make_trace(4, rounds=((1, 0), (2, 0)))
        assert trace.total_transmissions == 2
        assert trace.total_collisions == 0

    def test_repr(self):
        trace = make_trace(4, rounds=((1, 0), (2, 0)))
        assert "complete" in repr(trace)
        trace2 = make_trace(4, rounds=((1, 0),), complete=False)
        assert "/4" in repr(trace2)

    def test_summary_keys(self):
        s = make_trace().summary()
        assert set(s) == {
            "source",
            "n",
            "rounds",
            "completed",
            "informed",
            "transmissions",
            "collisions",
        }


class TestCurves:
    def test_informed_curve(self):
        trace = make_trace(4, rounds=((1, 0), (2, 0)))
        assert list(trace.informed_curve()) == [1, 2, 4]

    def test_monotone(self):
        trace = make_trace(6, rounds=((2, 0), (1, 0), (2, 0)))
        curve = trace.informed_curve()
        assert np.all(np.diff(curve) >= 0)

    def test_rounds_to_fraction(self):
        trace = make_trace(4, rounds=((1, 0), (2, 0)))
        assert trace.rounds_to_fraction(0.25) == 0
        assert trace.rounds_to_fraction(0.5) == 1
        assert trace.rounds_to_fraction(1.0) == 2

    def test_rounds_to_fraction_unreached(self):
        trace = make_trace(4, rounds=((1, 0),), complete=False)
        with pytest.raises(ValueError, match="never"):
            trace.rounds_to_fraction(1.0)
