"""Unit tests for trace analytics (broadcast trees, profiles)."""

import numpy as np
import pytest

from repro.broadcast.distributed import UniformProtocol
from repro.errors import SimulationError
from repro.graphs import gnp_connected
from repro.radio import (
    RadioNetwork,
    broadcast_tree,
    collision_profile,
    simulate_broadcast,
    transmission_efficiency,
)
from repro.radio.trace import BroadcastTrace


@pytest.fixture(scope="module")
def completed_trace():
    g = gnp_connected(300, 0.06, seed=41)
    return g, simulate_broadcast(RadioNetwork(g), UniformProtocol(0.1), 0, seed=1)


class TestInformerTracking:
    def test_star_informer_is_hub(self, star10):
        trace = simulate_broadcast(RadioNetwork(star10), UniformProtocol(1.0), 0, seed=0)
        assert np.all(trace.informer[1:] == 0)
        assert trace.informer[0] == -1

    def test_informers_are_neighbors(self, completed_trace):
        g, trace = completed_trace
        for v in range(g.n):
            if v == trace.source:
                assert trace.informer[v] == -1
            else:
                assert g.has_edge(int(trace.informer[v]), v)

    def test_informer_informed_earlier(self, completed_trace):
        g, trace = completed_trace
        for v in range(g.n):
            p = trace.informer[v]
            if p >= 0:
                assert trace.informed_round[p] < trace.informed_round[v]


class TestBroadcastTree:
    def test_tree_structure(self, completed_trace):
        g, trace = completed_trace
        tree = broadcast_tree(trace)
        assert tree.n == g.n
        assert tree.depth_of[trace.source] == 0
        assert tree.depth >= 1
        # Child depths are parent depth + 1.
        for v in range(g.n):
            if tree.parent[v] >= 0:
                assert tree.depth_of[v] == tree.depth_of[tree.parent[v]] + 1

    def test_children_counts_sum(self, completed_trace):
        g, trace = completed_trace
        tree = broadcast_tree(trace)
        # Every non-root node is someone's child.
        assert int(tree.children_counts().sum()) == g.n - 1

    def test_branching_histogram_total(self, completed_trace):
        _, trace = completed_trace
        tree = broadcast_tree(trace)
        assert int(tree.branching_histogram().sum()) == tree.n

    def test_path_to_source(self, completed_trace):
        _, trace = completed_trace
        tree = broadcast_tree(trace)
        path = tree.path_to_source(42)
        assert path[0] == 42
        assert path[-1] == trace.source
        assert path.size == tree.depth_of[42] + 1

    def test_path_out_of_range(self, completed_trace):
        _, trace = completed_trace
        tree = broadcast_tree(trace)
        with pytest.raises(SimulationError):
            tree.path_to_source(10_000)

    def test_num_relays_bounded(self, completed_trace):
        _, trace = completed_trace
        tree = broadcast_tree(trace)
        assert 1 <= tree.num_relays() < tree.n

    def test_tree_depth_at_least_bfs_depth(self, completed_trace):
        from repro.graphs import layer_decomposition

        g, trace = completed_trace
        tree = broadcast_tree(trace)
        # The realised tree can never be shallower than BFS distance.
        ld = layer_decomposition(g, trace.source)
        assert tree.depth >= ld.depth

    def test_incomplete_trace_rejected(self):
        trace = BroadcastTrace(source=0, n=3)
        trace.informed = np.array([True, False, False])
        trace.informer = np.array([-1, -1, -1])
        with pytest.raises(SimulationError, match="completed"):
            broadcast_tree(trace)

    def test_missing_informer_rejected(self):
        trace = BroadcastTrace(source=0, n=1)
        trace.informed = np.array([True])
        with pytest.raises(SimulationError, match="informer"):
            broadcast_tree(trace)


class TestProfiles:
    def test_collision_profile_shape(self, completed_trace):
        _, trace = completed_trace
        prof = collision_profile(trace)
        assert prof.shape == (trace.num_rounds,)
        assert np.all(prof >= 0)

    def test_efficiency_positive_for_completed(self, completed_trace):
        _, trace = completed_trace
        assert transmission_efficiency(trace) > 0

    def test_efficiency_empty_trace(self):
        trace = BroadcastTrace(source=0, n=5)
        trace.informed = np.zeros(5, dtype=bool)
        assert transmission_efficiency(trace) == 0.0

    def test_star_efficiency_is_n_minus_one(self, star10):
        trace = simulate_broadcast(RadioNetwork(star10), UniformProtocol(1.0), 0, seed=0)
        # One transmission informs all 9 leaves.
        assert transmission_efficiency(trace) == 9.0


class TestPhaseSummary:
    def test_groups_by_label(self):
        from repro.broadcast.centralized import ElsasserGasieniecScheduler
        from repro.graphs import gnp_connected
        from repro.radio import RadioNetwork, execute_schedule, phase_summary

        g = gnp_connected(300, 16 / 300, seed=44)
        schedule = ElsasserGasieniecScheduler(seed=0).build(g, 0)
        trace = execute_schedule(
            RadioNetwork(g), schedule, 0, mode="filter", stop_when_complete=False
        )
        summary = phase_summary(trace)
        assert "flood" in summary
        # Conservation: per-phase new_informed sums to n - 1.
        assert sum(b["new_informed"] for b in summary.values()) == g.n - 1
        # Per-phase rounds sum to the trace length.
        assert sum(b["rounds"] for b in summary.values()) == trace.num_rounds

    def test_unlabelled_rounds_bucket(self, completed_trace):
        from repro.radio import phase_summary

        _, trace = completed_trace
        summary = phase_summary(trace)
        assert list(summary) == [""]
        assert summary[""]["rounds"] == trace.num_rounds

    def test_empty_trace(self):
        from repro.radio import phase_summary

        assert phase_summary(BroadcastTrace(source=0, n=3)) == {}
