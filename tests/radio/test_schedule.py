"""Unit tests for schedules, executor and verifier."""

import pytest

from repro.errors import ScheduleError
from repro.radio import RadioNetwork, Schedule, execute_schedule, verify_schedule


class TestScheduleContainer:
    def test_build_and_access(self):
        s = Schedule(5, [[0], [1, 2]])
        assert len(s) == 2
        assert list(s[0]) == [0]
        assert list(s[1]) == [1, 2]

    def test_append_dedup_sort(self):
        s = Schedule(5)
        s.append([3, 1, 3])
        assert list(s[0]) == [1, 3]

    def test_labels(self):
        s = Schedule(5, [[0], [1]], labels=["a", "b"])
        assert s.labels == ["a", "b"]
        assert s.phase_lengths() == {"a": 1, "b": 1}

    def test_label_length_mismatch(self):
        with pytest.raises(ScheduleError, match="labels length"):
            Schedule(5, [[0]], labels=["a", "b"])

    def test_out_of_range_rejected(self):
        s = Schedule(5)
        with pytest.raises(ScheduleError, match="outside"):
            s.append([5])
        with pytest.raises(ScheduleError, match="outside"):
            s.append([-1])

    def test_needs_positive_n(self):
        with pytest.raises(ScheduleError):
            Schedule(0)

    def test_extend(self):
        a = Schedule(5, [[0]])
        b = Schedule(5, [[1], [2]])
        a.extend(b)
        assert len(a) == 3

    def test_extend_size_mismatch(self):
        with pytest.raises(ScheduleError, match="cannot extend"):
            Schedule(5).extend(Schedule(6))

    def test_stats(self):
        s = Schedule(5, [[0], [1, 2], []])
        assert s.total_transmissions == 3
        assert s.max_set_size == 2

    def test_iter(self):
        s = Schedule(5, [[0], [1]])
        assert [list(r) for r in s] == [[0], [1]]

    def test_repr(self):
        assert "rounds=2" in repr(Schedule(5, [[0], [1]]))


class TestExecutor:
    def test_path_flood(self, path5):
        net = RadioNetwork(path5)
        s = Schedule(5, [[0], [1], [2], [3]])
        trace = execute_schedule(net, s, 0)
        assert trace.completed
        assert trace.completion_round == 4

    def test_strict_mode_rejects_uninformed(self, path5):
        net = RadioNetwork(path5)
        s = Schedule(5, [[3]])  # node 3 not informed at round 1
        with pytest.raises(ScheduleError, match="uninformed"):
            execute_schedule(net, s, 0, mode="strict")

    def test_filter_mode_drops_uninformed(self, path5):
        net = RadioNetwork(path5)
        s = Schedule(5, [[0, 3]])
        trace = execute_schedule(net, s, 0, mode="filter")
        # Node 3's transmission is filtered; 0 informs 1 cleanly.
        assert trace.records[0].num_new == 1
        assert trace.informed[1]

    def test_permissive_mode_noise_blocks(self, path5):
        net = RadioNetwork(path5)
        s = Schedule(5, [[0, 2]])  # 2 uninformed: noise collides at 1
        trace = execute_schedule(net, s, 0, mode="permissive")
        # Node 1 collided (0's message vs 2's noise); node 3 heard only
        # the uninformed 2, which carries nothing: zero deliveries.
        assert trace.records[0].num_new == 0
        assert not trace.informed[1]
        assert not trace.informed[3]

    def test_invalid_mode(self, path5):
        net = RadioNetwork(path5)
        with pytest.raises(ScheduleError, match="mode"):
            execute_schedule(net, Schedule(5), 0, mode="bogus")

    def test_size_mismatch(self, path5):
        net = RadioNetwork(path5)
        with pytest.raises(ScheduleError, match="n="):
            execute_schedule(net, Schedule(4), 0)

    def test_source_out_of_range(self, path5):
        net = RadioNetwork(path5)
        with pytest.raises(ScheduleError, match="source"):
            execute_schedule(net, Schedule(5), 7)

    def test_stop_when_complete(self, star10):
        net = RadioNetwork(star10)
        s = Schedule(10, [[0], [1], [2]])
        trace = execute_schedule(net, s, 0, stop_when_complete=True)
        assert trace.num_rounds == 1  # round 1 informs everyone

    def test_no_early_stop(self, star10):
        net = RadioNetwork(star10)
        s = Schedule(10, [[0], [1], [2]])
        trace = execute_schedule(net, s, 0, stop_when_complete=False)
        assert trace.num_rounds == 3

    def test_informed_round_recorded(self, path5):
        net = RadioNetwork(path5)
        s = Schedule(5, [[0], [1], [2], [3]])
        trace = execute_schedule(net, s, 0)
        assert list(trace.informed_round) == [0, 1, 2, 3, 4]

    def test_labels_propagate_to_trace(self, path5):
        net = RadioNetwork(path5)
        s = Schedule(5, [[0], [1]], labels=["x", "y"])
        trace = execute_schedule(net, s, 0, stop_when_complete=False)
        assert [r.label for r in trace.records] == ["x", "y"]


class TestVerifier:
    def test_complete_schedule_verifies(self, path5):
        net = RadioNetwork(path5)
        assert verify_schedule(net, Schedule(5, [[0], [1], [2], [3]]), 0)

    def test_incomplete_schedule_fails(self, path5):
        net = RadioNetwork(path5)
        assert not verify_schedule(net, Schedule(5, [[0], [1]]), 0)

    def test_colliding_schedule_fails(self, triangle):
        net = RadioNetwork(triangle)
        # Round 1: 0 informs 1,2. But from source 0 a single round works.
        assert verify_schedule(net, Schedule(3, [[0]]), 0)
        # Source 1: round 1 = {1} informs 0,2. Schedule with {0,2} second
        # round irrelevant; check a bad one: empty schedule.
        assert not verify_schedule(net, Schedule(3, []), 1)
