"""Unit tests for the radio round kernel (collision semantics)."""

import numpy as np
import pytest

from repro.errors import GraphError, SimulationError
from repro.graphs import Adjacency
from repro.radio import RadioNetwork


def masks(n, transmit, informed):
    t = np.zeros(n, dtype=bool)
    t[list(transmit)] = True
    i = np.zeros(n, dtype=bool)
    i[list(informed)] = True
    return t, i


class TestConstruction:
    def test_basic(self, path5):
        net = RadioNetwork(path5)
        assert net.n == 5
        assert "n=5" in repr(net)

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            RadioNetwork(Adjacency.empty(0))


class TestReceptionRule:
    def test_single_transmitter_delivers(self, path5):
        net = RadioNetwork(path5)
        t, i = masks(5, {0}, {0})
        res = net.step(t, i)
        assert list(res.newly_informed) == [1]
        assert res.num_transmitters == 1
        assert res.num_collided == 0

    def test_two_transmitters_collide(self, triangle):
        # Nodes 0 and 1 both transmit; node 2 hears both -> collision.
        net = RadioNetwork(triangle)
        t, i = masks(3, {0, 1}, {0, 1})
        res = net.step(t, i)
        assert res.num_new == 0
        assert res.collided[2]
        assert res.num_collided == 1

    def test_transmitter_does_not_receive(self, path5):
        # 0 and 2 transmit; node 1 hears both (collision); node 3 hears 2.
        net = RadioNetwork(path5)
        t, i = masks(5, {0, 2}, {0, 2})
        res = net.step(t, i)
        assert list(res.newly_informed) == [3]
        assert res.collided[1]

    def test_uninformed_transmitter_delivers_nothing(self, path5):
        # Node 1 transmits but is uninformed: neighbours get no message.
        net = RadioNetwork(path5)
        t, i = masks(5, {1}, {0})
        res = net.step(t, i)
        assert res.num_new == 0
        assert not np.any(res.received)

    def test_uninformed_transmitter_still_blocks(self, path5):
        # 0 (informed) and 2 (uninformed) transmit: their common neighbour
        # 1 sees two transmissions -> collision despite one being noise.
        net = RadioNetwork(path5)
        t, i = masks(5, {0, 2}, {0})
        res = net.step(t, i)
        assert res.collided[1]
        assert res.num_new == 0

    def test_star_collision_storm(self, star10):
        # All 9 leaves transmit: hub collides.
        net = RadioNetwork(star10)
        t, i = masks(10, set(range(1, 10)), set(range(1, 10)))
        res = net.step(t, i)
        assert res.collided[0]
        assert res.num_new == 0

    def test_star_hub_informs_all(self, star10):
        net = RadioNetwork(star10)
        t, i = masks(10, {0}, {0})
        res = net.step(t, i)
        assert res.num_new == 9

    def test_received_includes_already_informed(self, path5):
        # Node 1 transmits; node 0 already informed but still "receives".
        net = RadioNetwork(path5)
        t, i = masks(5, {1}, {0, 1})
        res = net.step(t, i)
        assert res.received[0]
        assert list(res.newly_informed) == [2]

    def test_no_transmitters(self, path5):
        net = RadioNetwork(path5)
        t, i = masks(5, set(), {0})
        res = net.step(t, i)
        assert res.num_new == 0
        assert res.num_transmitters == 0
        assert not np.any(res.collided)

    def test_mask_validation(self, path5):
        net = RadioNetwork(path5)
        good = np.zeros(5, dtype=bool)
        with pytest.raises(SimulationError):
            net.step(np.zeros(4, dtype=bool), good)
        with pytest.raises(SimulationError):
            net.step(np.zeros(5, dtype=int), good)


class TestReferenceAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_vectorized_matches_reference(self, gnp_small, seed):
        net = RadioNetwork(gnp_small)
        rng = np.random.default_rng(seed)
        informed = rng.random(net.n) < 0.4
        informed[0] = True
        transmitting = (rng.random(net.n) < 0.2) & informed
        # Also mix in some uninformed transmitters (noise) half the time.
        if seed % 2:
            transmitting |= rng.random(net.n) < 0.05
        a = net.step(transmitting, informed)
        b = net.step_reference(transmitting, informed)
        assert np.array_equal(a.received, b.received)
        assert np.array_equal(a.newly_informed, b.newly_informed)
        assert np.array_equal(a.collided, b.collided)
        assert a.num_transmitters == b.num_transmitters


class TestStepResult:
    def test_counts(self, star10):
        net = RadioNetwork(star10)
        t, i = masks(10, {0}, {0})
        res = net.step(t, i)
        assert res.num_new == 9
        assert res.num_collided == 0
