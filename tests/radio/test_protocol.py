"""Unit tests for the protocol interface and adapters."""

import numpy as np
import pytest

from repro.radio.protocol import FunctionProtocol, RadioProtocol, bernoulli_mask


class TestBernoulliMask:
    def test_extremes(self, rng):
        assert not np.any(bernoulli_mask(rng, 0.0, 100))
        assert np.all(bernoulli_mask(rng, 1.0, 100))

    def test_scalar_rate(self, rng):
        mask = bernoulli_mask(rng, 0.3, 10000)
        assert abs(mask.mean() - 0.3) < 0.03

    def test_per_node_rates(self, rng):
        probs = np.concatenate([np.zeros(500), np.ones(500)])
        mask = bernoulli_mask(rng, probs, 1000)
        assert not np.any(mask[:500])
        assert np.all(mask[500:])


class TestFunctionProtocol:
    def test_delegates(self, rng):
        calls = []

        def fn(t, informed, informed_round, r):
            calls.append(t)
            return informed.copy()

        proto = FunctionProtocol(fn, name="probe")
        informed = np.array([True, False])
        out = proto.transmit_mask(3, informed, np.array([0, -1]), rng)
        assert calls == [3]
        assert np.array_equal(out, informed)
        assert proto.name == "probe"
        assert "probe" in repr(proto)

    def test_prepare_default_noop(self):
        proto = FunctionProtocol(lambda *a: None)
        proto.prepare(10, 0.5, 0)  # must not raise


class TestAbstractBase:
    def test_cannot_instantiate(self):
        with pytest.raises(TypeError):
            RadioProtocol()
