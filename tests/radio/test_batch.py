"""Tests for the batched multi-trial round kernel and engine.

The load-bearing guarantee: ``run_broadcast_batch`` is bit-for-bit
equivalent to ``repetitions`` serial runs on the per-trial streams
spawned from the same root seed.  The serial side of every equivalence
test is a :class:`FunctionProtocol` proxy wrapping the same protocol's
scalar ``transmit_mask`` — it advertises ``supports_batch = False``, so
``protocol_times`` takes the pre-batch path while drawing identically.
"""

import numpy as np
import pytest

from repro.backends import available_backend_names, use_backend
from repro.broadcast.distributed.decay import DecayProtocol
from repro.broadcast.distributed.eg_randomized import EGRandomizedProtocol
from repro.broadcast.distributed.uniform import UniformProtocol
from repro.errors import DisconnectedGraphError, InvalidParameterError, SimulationError
from repro.experiments.runner import protocol_times
from repro.graphs import Adjacency, cycle_graph, gnp_connected, path_graph
from repro.radio import RadioNetwork, run_broadcast_batch
from repro.radio.protocol import FunctionProtocol, bernoulli_mask_batch
from repro.rng import spawn_generators


def serial_proxy(protocol):
    """Same draws, scalar path: a non-batch twin of ``protocol``."""
    proxy = FunctionProtocol(protocol.transmit_mask, name=f"serial-{protocol.name}")
    proxy.prepare = protocol.prepare
    assert not proxy.supports_batch
    return proxy


@pytest.fixture(scope="module")
def medium():
    n = 300
    p = 2 * np.log(n) / n
    adj = gnp_connected(n, p, seed=42)
    return RadioNetwork(adj), p


PROTOCOLS = [
    pytest.param(lambda n, p: UniformProtocol(1.0 / (p * (n - 1))), id="uniform"),
    pytest.param(lambda n, p: DecayProtocol(n), id="decay"),
    pytest.param(lambda n, p: EGRandomizedProtocol(n, p), id="eg"),
    pytest.param(
        lambda n, p: EGRandomizedProtocol(n, p, strict_participation=True),
        id="eg-strict",
    ),
]


class TestBatchSerialEquivalence:
    """Batch ≡ serial, on every available kernel backend: the batched
    engine's counts — and therefore its draws and completion rounds —
    must not depend on which backend computed them."""

    @pytest.fixture(autouse=True, params=available_backend_names())
    def _backend(self, request):
        with use_backend(request.param):
            yield request.param

    @pytest.mark.parametrize("factory", PROTOCOLS)
    def test_completion_rounds_identical(self, medium, factory):
        net, p = medium
        proto = factory(net.n, p)
        batch = protocol_times(net, proto, repetitions=12, seed=7, p=p)
        serial = protocol_times(net, serial_proxy(proto), repetitions=12, seed=7, p=p)
        assert np.array_equal(batch, serial)

    def test_fractions_identical_on_budget_miss(self, medium):
        # A 3-round cap leaves trials incomplete: inf rounds must carry
        # the same partial informed fraction both ways.
        net, p = medium
        proto = UniformProtocol(1.0 / (p * (net.n - 1)))
        b_rounds, b_frac = protocol_times(
            net, proto, repetitions=8, seed=3, p=p, max_rounds=3, with_fractions=True
        )
        s_rounds, s_frac = protocol_times(
            net,
            serial_proxy(proto),
            repetitions=8,
            seed=3,
            p=p,
            max_rounds=3,
            with_fractions=True,
        )
        assert np.all(np.isinf(b_rounds))
        assert np.array_equal(b_rounds, s_rounds)
        assert np.array_equal(b_frac, s_frac)
        assert np.all((b_frac > 0) & (b_frac < 1))

    def test_generic_fallback_protocol_equivalent(self, medium):
        # A protocol without a vectorized batch mask still runs correctly
        # on the batched engine via the per-column fallback.
        net, p = medium
        proto = UniformProtocol(1.0 / (p * (net.n - 1)))
        fallback = serial_proxy(proto)  # FunctionProtocol: generic batch path
        direct = run_broadcast_batch(net, fallback, repetitions=6, p=p, seed=11)
        serial = protocol_times(net, fallback, repetitions=6, seed=11, p=p)
        assert np.array_equal(direct.completion_rounds, serial)

    def test_nondefault_source(self, medium):
        net, p = medium
        proto = UniformProtocol(1.0 / (p * (net.n - 1)))
        batch = protocol_times(net, proto, repetitions=6, seed=5, p=p, source=17)
        serial = protocol_times(
            net, serial_proxy(proto), repetitions=6, seed=5, p=p, source=17
        )
        assert np.array_equal(batch, serial)


class TestBatchEngineEdges:
    def test_single_repetition(self, medium):
        net, p = medium
        proto = UniformProtocol(1.0 / (p * (net.n - 1)))
        res = run_broadcast_batch(net, proto, repetitions=1, p=p, seed=0)
        assert res.repetitions == 1
        assert res.num_completed == 1
        assert res.completion_rounds.shape == (1,)

    def test_trial_finishing_round_one(self):
        # Path of 2: the only informed node transmits alone, so every
        # trial of the always-transmit protocol completes in round 1.
        net = RadioNetwork(path_graph(2))
        proto = UniformProtocol(1.0)
        res = run_broadcast_batch(net, proto, repetitions=5, seed=1)
        assert np.array_equal(res.completion_rounds, np.ones(5))
        assert res.num_rounds == 1
        assert np.array_equal(res.informed_fractions, np.ones(5))

    def test_single_node_completes_round_zero(self):
        net = RadioNetwork(Adjacency.empty(1))
        proto = UniformProtocol(1.0)
        res = run_broadcast_batch(net, proto, repetitions=3, seed=1)
        assert np.array_equal(res.completion_rounds, np.zeros(3))
        assert res.num_rounds == 0

    def test_round_cap_reports_inf(self):
        # 4-cycle with always-transmit: the antipodal node's two parents
        # collide at it every round forever — no trial can finish.
        net = RadioNetwork(cycle_graph(4))
        proto = UniformProtocol(1.0)
        res = run_broadcast_batch(net, proto, repetitions=4, seed=2, max_rounds=10)
        assert np.all(np.isinf(res.completion_rounds))
        assert res.num_rounds == 10
        assert res.num_completed == 0
        assert np.array_equal(res.informed_fractions, np.full(4, 0.75))

    def test_mixed_completion_keeps_trial_order(self, medium):
        # Trials complete in different rounds; results must land in their
        # original trial slots despite the engine compacting state.
        net, p = medium
        proto = UniformProtocol(1.0 / (p * (net.n - 1)))
        res = run_broadcast_batch(net, proto, repetitions=16, p=p, seed=9)
        assert res.num_completed == 16
        assert len(np.unique(res.completion_rounds)) > 1
        serial = protocol_times(
            net, serial_proxy(proto), repetitions=16, seed=9, p=p
        )
        assert np.array_equal(res.completion_rounds, serial)

    def test_invalid_args(self, medium):
        net, _ = medium
        proto = UniformProtocol(0.5)
        with pytest.raises(InvalidParameterError):
            run_broadcast_batch(net, proto, repetitions=0, seed=0)
        with pytest.raises(InvalidParameterError):
            run_broadcast_batch(net, proto, source=net.n, repetitions=2, seed=0)

    def test_disconnected_raises(self):
        adj = Adjacency.from_edges(4, [(0, 1), (2, 3)])
        net = RadioNetwork(adj)
        with pytest.raises(DisconnectedGraphError):
            run_broadcast_batch(net, UniformProtocol(1.0), repetitions=2, seed=0)


class TestStepBatch:
    def test_matches_serial_step_per_column(self, medium, rng):
        net, _ = medium
        n = net.n
        transmitting = rng.random((n, 7)) < 0.1
        informed = (rng.random((n, 7)) < 0.5) | transmitting
        batch = net.step_batch(transmitting, informed)
        assert batch.repetitions == 7
        for r in range(7):
            serial = net.step(transmitting[:, r], informed[:, r])
            assert np.array_equal(batch.received[:, r], serial.received)
            assert np.array_equal(batch.collided[:, r], serial.collided)
            assert batch.num_transmitters[r] == serial.num_transmitters

    def test_uninformed_transmitters_block_without_delivering(self, medium, rng):
        # Columns where transmitting is NOT a subset of informed exercise
        # the second (message-carrying) counting pass.
        net, _ = medium
        n = net.n
        transmitting = rng.random((n, 5)) < 0.2
        informed = rng.random((n, 5)) < 0.3
        batch = net.step_batch(transmitting, informed)
        for r in range(5):
            serial = net.step(transmitting[:, r], informed[:, r])
            assert np.array_equal(batch.received[:, r], serial.received)

    def test_accounting_switches(self, medium, rng):
        net, _ = medium
        transmitting = rng.random((net.n, 3)) < 0.1
        informed = np.ones((net.n, 3), dtype=bool)
        lean = net.step_batch(
            transmitting,
            informed,
            with_collided=False,
            with_transmitters=False,
            assume_informed=True,
        )
        full = net.step_batch(transmitting, informed)
        assert lean.collided is None
        assert lean.num_transmitters is None
        assert np.array_equal(lean.received, full.received)

    def test_shape_check(self, medium):
        net, _ = medium
        with pytest.raises(SimulationError):
            net.step_batch(np.zeros(net.n, dtype=bool), np.zeros((net.n, 2), dtype=bool))
        with pytest.raises(SimulationError):
            net.step_batch(
                np.zeros((net.n, 2), dtype=int), np.zeros((net.n, 2), dtype=bool)
            )


class TestBernoulliMaskBatch:
    def test_columns_match_serial_draws(self):
        rngs = spawn_generators(3, 4)
        twin = spawn_generators(3, 4)
        batch = bernoulli_mask_batch(rngs, 0.4, 50)
        assert batch.shape == (50, 4)
        for r in range(4):
            assert np.array_equal(batch[:, r], twin[r].random(50) < 0.4)

    def test_consumes_one_block_per_generator(self):
        rngs = spawn_generators(8, 2)
        twin = spawn_generators(8, 2)
        bernoulli_mask_batch(rngs, 0.5, 20)
        for used, fresh in zip(rngs, twin):
            fresh.random(20)
            assert used.random() == fresh.random()
