"""Unit tests for the broadcast simulation driver."""

import numpy as np
import pytest

from repro.errors import (
    BroadcastIncompleteError,
    DisconnectedGraphError,
    InvalidParameterError,
)
from repro.graphs import Adjacency
from repro.radio import (
    FunctionProtocol,
    RadioNetwork,
    broadcast_time,
    default_round_cap,
    repeat_broadcast,
    simulate_broadcast,
)


def always_transmit():
    return FunctionProtocol(
        lambda t, informed, informed_round, rng: np.ones(informed.size, dtype=bool),
        name="flood",
    )


def never_transmit():
    return FunctionProtocol(
        lambda t, informed, informed_round, rng: np.zeros(informed.size, dtype=bool),
        name="silent",
    )


class TestSimulateBroadcast:
    def test_star_completes_in_one_round(self, star10):
        trace = simulate_broadcast(RadioNetwork(star10), always_transmit(), 0)
        assert trace.completed
        assert trace.completion_round == 1

    def test_path_flood(self, path5):
        trace = simulate_broadcast(RadioNetwork(path5), always_transmit(), 0)
        # Flooding a path: the frontier advances one hop per round
        # (behind-the-frontier transmitters collide only at informed nodes).
        assert trace.completed
        assert trace.completion_round == 4

    def test_stalled_protocol_raises_with_trace(self, path5):
        with pytest.raises(BroadcastIncompleteError) as exc:
            simulate_broadcast(
                RadioNetwork(path5), never_transmit(), 0, max_rounds=10
            )
        assert exc.value.trace is not None
        assert exc.value.trace.num_informed == 1

    def test_disconnected_raises_early(self):
        g = Adjacency.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            simulate_broadcast(RadioNetwork(g), always_transmit(), 0)

    def test_check_connected_can_be_skipped(self):
        g = Adjacency.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(BroadcastIncompleteError):
            simulate_broadcast(
                RadioNetwork(g), always_transmit(), 0,
                check_connected=False, max_rounds=5,
            )

    def test_source_out_of_range(self, path5):
        # A bad source is a parameter error, not a connectivity property.
        with pytest.raises(InvalidParameterError):
            simulate_broadcast(RadioNetwork(path5), always_transmit(), 9)

    def test_uninformed_never_transmit(self, path5):
        seen = []

        def spy(t, informed, informed_round, rng):
            seen.append(informed.copy())
            return np.ones(informed.size, dtype=bool)

        net = RadioNetwork(path5)
        trace = simulate_broadcast(net, FunctionProtocol(spy), 0)
        # The simulator masks with informed; transmitters in the trace can
        # never exceed the informed count entering the round.
        for rec, informed in zip(trace.records, seen):
            assert rec.num_transmitters <= int(informed.sum())

    def test_informed_round_consistency(self, gnp_small):
        # Permanent flooding deadlocks on dense random graphs (everyone
        # collides) — exactly the failure mode the paper's selective
        # protocols avoid.  The partial trace must still be consistent.
        from repro.broadcast.distributed import UniformProtocol

        trace = simulate_broadcast(
            RadioNetwork(gnp_small), UniformProtocol(0.1), 0, seed=1
        )
        assert trace.completed
        assert trace.informed_round[0] == 0
        assert trace.informed_round.max() == trace.completion_round
        # informed_round counts match per-round num_new.
        for rec in trace.records:
            assert int(np.sum(trace.informed_round == rec.round_index)) == rec.num_new

    def test_flooding_deadlocks_on_dense_random_graph(self, gnp_small):
        # The motivating pathology: with every informed node transmitting,
        # collisions freeze the frontier and the broadcast never completes.
        with pytest.raises(BroadcastIncompleteError) as exc:
            simulate_broadcast(
                RadioNetwork(gnp_small), always_transmit(), 0,
                seed=1, max_rounds=200,
            )
        assert 1 < exc.value.trace.num_informed < gnp_small.n

    def test_protocol_prepare_receives_params(self, star10):
        captured = {}

        class Probe(FunctionProtocol):
            def prepare(self, n, p, source):
                captured.update(n=n, p=p, source=source)

        proto = Probe(lambda t, i, ir, r: np.ones(i.size, dtype=bool))
        simulate_broadcast(RadioNetwork(star10), proto, 0, p=0.25)
        assert captured == {"n": 10, "p": 0.25, "source": 0}


class TestHelpers:
    def test_default_round_cap_monotone(self):
        assert default_round_cap(10) < default_round_cap(10_000)
        assert default_round_cap(2) >= 200

    def test_broadcast_time(self, star10):
        assert broadcast_time(RadioNetwork(star10), always_transmit(), 0) == 1

    def test_repeat_broadcast_shapes(self, star10):
        times = repeat_broadcast(
            RadioNetwork(star10), always_transmit(), repetitions=4, seed=0
        )
        assert times.shape == (4,)
        assert np.all(times == 1)

    def test_repeat_broadcast_rejects_zero_reps(self, star10):
        with pytest.raises(ValueError):
            repeat_broadcast(RadioNetwork(star10), always_transmit(), repetitions=0)

    def test_repeat_broadcast_deterministic(self, gnp_small):
        from repro.broadcast.distributed import UniformProtocol

        net = RadioNetwork(gnp_small)
        a = repeat_broadcast(net, UniformProtocol(0.1), repetitions=3, seed=5)
        b = repeat_broadcast(net, UniformProtocol(0.1), repetitions=3, seed=5)
        assert np.array_equal(a, b)


class TestParallelRepetitions:
    def test_parallel_matches_serial(self, gnp_small):
        from repro.broadcast.distributed import UniformProtocol

        net = RadioNetwork(gnp_small)
        serial = repeat_broadcast(
            net, UniformProtocol(0.1), repetitions=4, seed=7
        )
        parallel = repeat_broadcast(
            net, UniformProtocol(0.1), repetitions=4, seed=7, n_jobs=2
        )
        assert np.array_equal(serial, parallel)

    def test_n_jobs_validation(self, star10):
        with pytest.raises(ValueError, match="n_jobs"):
            repeat_broadcast(
                RadioNetwork(star10), always_transmit(), repetitions=2, n_jobs=0
            )
