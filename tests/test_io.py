"""Unit tests for persistence (graphs, schedules, results)."""

import numpy as np
import pytest

from repro.errors import GraphError, ReproError, ScheduleError
from repro.experiments.runner import ExperimentResult
from repro.graphs import gnp
from repro.io import (
    load_graph,
    load_result,
    load_schedule,
    save_graph,
    save_result,
    save_schedule,
)
from repro.radio import Schedule
from repro.theory.fitting import linear_fit


class TestGraphIO:
    def test_roundtrip(self, tmp_path):
        g = gnp(200, 0.05, seed=1)
        path = save_graph(g, tmp_path / "g")
        assert path.suffix == ".npz"
        assert load_graph(path) == g

    def test_empty_graph_roundtrip(self, tmp_path):
        from repro.graphs import Adjacency

        g = Adjacency.empty(5)
        assert load_graph(save_graph(g, tmp_path / "empty")) == g

    def test_bad_file_raises(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, wrong_key=np.arange(3))
        with pytest.raises(GraphError, match="not a saved graph"):
            load_graph(bad)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphError):
            load_graph(tmp_path / "nope.npz")

    def test_corrupted_structure_rejected(self, tmp_path):
        bad = tmp_path / "bad2.npz"
        # Asymmetric CSR: loader must re-validate and refuse.
        np.savez(bad, indptr=np.array([0, 1, 1]), indices=np.array([1]))
        with pytest.raises(GraphError):
            load_graph(bad)


class TestScheduleIO:
    def test_roundtrip(self, tmp_path):
        s = Schedule(10, [[0], [1, 2], []], labels=["a", "b", "c"])
        path = save_schedule(s, tmp_path / "s")
        loaded = load_schedule(path)
        assert loaded.n == 10
        assert len(loaded) == 3
        assert [list(r) for r in loaded] == [[0], [1, 2], []]
        assert loaded.labels == ["a", "b", "c"]

    def test_empty_schedule(self, tmp_path):
        s = Schedule(5)
        loaded = load_schedule(save_schedule(s, tmp_path / "empty"))
        assert len(loaded) == 0
        assert loaded.n == 5

    def test_bad_file_raises(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, nothing=np.arange(2))
        with pytest.raises(ScheduleError, match="not a saved schedule"):
            load_schedule(bad)

    def test_built_schedule_roundtrip(self, tmp_path):
        from repro.broadcast.centralized import GreedyCoverScheduler
        from repro.graphs import gnp_connected
        from repro.radio import RadioNetwork, verify_schedule

        g = gnp_connected(100, 0.15, seed=2)
        s = GreedyCoverScheduler(seed=0).build(g, 0)
        loaded = load_schedule(save_schedule(s, tmp_path / "built"))
        assert verify_schedule(RadioNetwork(g), loaded, 0)


class TestResultIO:
    def make_result(self):
        res = ExperimentResult(
            experiment_id="EX",
            title="demo",
            claim="c",
            columns=["n", "t"],
            rows=[{"n": 10, "t": 1.5}, {"n": 20, "t": None}],
            notes=["note"],
        )
        res.fits["f"] = linear_fit(np.array([1.0, 2.0]), np.array([2.0, 4.0]), "x")
        return res

    def test_roundtrip(self, tmp_path):
        res = self.make_result()
        path = save_result(res, tmp_path / "r")
        assert path.suffix == ".json"
        loaded = load_result(path)
        assert loaded.experiment_id == "EX"
        assert loaded.rows == res.rows
        assert loaded.notes == ["note"]
        assert loaded.fits["f"].slope == pytest.approx(2.0)
        assert loaded.fits["f"].feature_name == "x"

    def test_numpy_scalars_serialised(self, tmp_path):
        res = self.make_result()
        res.rows.append({"n": np.int64(5), "t": np.float64(2.5)})
        loaded = load_result(save_result(res, tmp_path / "np"))
        assert loaded.rows[-1] == {"n": 5, "t": 2.5}

    def test_table_renders_after_load(self, tmp_path):
        loaded = load_result(save_result(self.make_result(), tmp_path / "t"))
        assert "[EX] demo" in loaded.table()

    def test_bad_file_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"half\": true}")
        with pytest.raises(ReproError, match="not a saved result"):
            load_result(bad)

    def test_real_experiment_roundtrip(self, tmp_path):
        from repro.experiments import run_experiment

        res = run_experiment("E7", quick=True, seed=3)
        loaded = load_result(save_result(res, tmp_path / "e7"))
        assert loaded.experiment_id == "E7"
        assert len(loaded.rows) == len(res.rows)
