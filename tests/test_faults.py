"""Unit tests for fault models and the faulty-broadcast simulator."""

import math

import numpy as np
import pytest

from repro.broadcast.distributed import DecayProtocol, UniformProtocol
from repro.errors import (
    BroadcastIncompleteError,
    DisconnectedGraphError,
    InvalidParameterError,
)
from repro.faults import CrashSchedule, LossyLinkModel, simulate_broadcast_faulty
from repro.graphs import gnp_connected
from repro.radio import RadioNetwork


class TestCrashSchedule:
    def test_none(self):
        cs = CrashSchedule.none(5)
        assert cs.num_crashes() == 0
        assert np.all(cs.alive_at(100))
        assert np.all(cs.eventually_alive())

    def test_alive_at_semantics(self):
        cs = CrashSchedule(np.array([-1, 3, 1]))
        assert list(cs.alive_at(1)) == [True, True, False]
        assert list(cs.alive_at(2)) == [True, True, False]
        assert list(cs.alive_at(3)) == [True, False, False]

    def test_random_respects_protect(self, rng):
        cs = CrashSchedule.random(50, 1.0, 10, seed=rng, protect=[0, 7])
        assert cs.crash_round[0] == -1
        assert cs.crash_round[7] == -1
        assert cs.num_crashes() == 48

    def test_random_fraction(self, rng):
        cs = CrashSchedule.random(100, 0.2, 10, seed=rng)
        assert cs.num_crashes() == 20

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            CrashSchedule(np.array([[1]]))
        with pytest.raises(InvalidParameterError):
            CrashSchedule(np.array([-2]))
        with pytest.raises(InvalidParameterError):
            CrashSchedule.random(10, 1.5, 10)
        with pytest.raises(InvalidParameterError):
            CrashSchedule.random(10, 0.5, 0)


class TestLossyLinkModel:
    def test_full_reliability_matches_kernel(self, gnp_small, rng):
        net = RadioNetwork(gnp_small)
        links = LossyLinkModel(gnp_small, 1.0)
        transmitting = rng.random(gnp_small.n) < 0.2
        informed = np.ones(gnp_small.n, dtype=bool)
        total, message = links.sample_round_counts(transmitting, transmitting, rng)
        ref = gnp_small.neighbor_counts(transmitting)
        assert np.array_equal(total, ref)
        assert np.array_equal(message, ref)

    def test_zero_ish_reliability_blocks(self, gnp_small, rng):
        links = LossyLinkModel(gnp_small, 1e-12)
        transmitting = np.ones(gnp_small.n, dtype=bool)
        total, _ = links.sample_round_counts(transmitting, transmitting, rng)
        assert total.sum() == 0

    def test_partial_reliability_thins(self, gnp_small, rng):
        links = LossyLinkModel(gnp_small, 0.5)
        transmitting = np.ones(gnp_small.n, dtype=bool)
        total, _ = links.sample_round_counts(transmitting, transmitting, rng)
        full = gnp_small.neighbor_counts(transmitting).sum()
        assert 0.35 * full < total.sum() < 0.65 * full

    def test_asymmetric_mode(self, gnp_small, rng):
        links = LossyLinkModel(gnp_small, 0.5, asymmetric=True)
        transmitting = np.ones(gnp_small.n, dtype=bool)
        total, _ = links.sample_round_counts(transmitting, transmitting, rng)
        assert total.sum() > 0
        assert "asymmetric" in repr(links)

    def test_validation(self, gnp_small):
        with pytest.raises(InvalidParameterError):
            LossyLinkModel(gnp_small, 0.0)
        with pytest.raises(InvalidParameterError):
            LossyLinkModel(gnp_small, 1.1)


class TestFaultySimulator:
    def test_no_faults_equals_normal(self, gnp_medium):
        from repro.radio import simulate_broadcast

        net = RadioNetwork(gnp_medium)
        a = simulate_broadcast(net, UniformProtocol(0.1), 0, seed=5)
        b = simulate_broadcast_faulty(net, UniformProtocol(0.1), 0, seed=5)
        assert a.completion_round == b.completion_round

    def test_completes_with_crashes(self, gnp_medium):
        net = RadioNetwork(gnp_medium)
        crashes = CrashSchedule.random(net.n, 0.15, 40, seed=1, protect=[0])
        trace = simulate_broadcast_faulty(
            net, DecayProtocol(net.n), crashes=crashes, seed=2, max_rounds=2000
        )
        assert trace.completed

    def test_completes_with_lossy_links(self, gnp_medium):
        net = RadioNetwork(gnp_medium)
        links = LossyLinkModel(gnp_medium, 0.6)
        trace = simulate_broadcast_faulty(
            net, DecayProtocol(net.n), links=links, seed=3, max_rounds=4000
        )
        assert trace.completed

    def test_crashed_nodes_not_required(self, star10):
        # All leaves except one crash before round 1... protect hub+leaf 1.
        crash = np.full(10, 1, dtype=np.int64)
        crash[0] = -1
        crash[1] = -1
        net = RadioNetwork(star10)
        trace = simulate_broadcast_faulty(
            net, UniformProtocol(1.0), 0,
            crashes=CrashSchedule(crash), seed=4, max_rounds=50,
        )
        assert trace.completed  # only hub and leaf 1 needed

    def test_dead_nodes_never_transmit(self, star10):
        # Hub crashes at round 1: nobody else can ever be informed.
        crash = np.full(10, -1, dtype=np.int64)
        crash[0] = 1
        trace = simulate_broadcast_faulty(
            RadioNetwork(star10), UniformProtocol(1.0), 0,
            crashes=CrashSchedule(crash), seed=5, max_rounds=30,
            raise_on_incomplete=False,
        )
        assert not trace.completed

    def test_raise_on_incomplete(self, star10):
        crash = np.full(10, -1, dtype=np.int64)
        crash[0] = 1
        with pytest.raises(BroadcastIncompleteError):
            simulate_broadcast_faulty(
                RadioNetwork(star10), UniformProtocol(1.0), 0,
                crashes=CrashSchedule(crash), seed=6, max_rounds=30,
            )

    def test_schedule_size_mismatch_is_parameter_error(self, star10):
        with pytest.raises(InvalidParameterError, match="covers"):
            simulate_broadcast_faulty(
                RadioNetwork(star10), UniformProtocol(1.0), 0,
                crashes=CrashSchedule.none(9),
            )

    def test_source_out_of_range_is_parameter_error(self, star10):
        with pytest.raises(InvalidParameterError, match="out of range"):
            simulate_broadcast_faulty(RadioNetwork(star10), UniformProtocol(1.0), 99)

    def test_everyone_crashes_except_protected_source(self, star10):
        # crash_fraction = 1.0 with a protected source: the completion
        # target shrinks to the survivors, so the run still "completes".
        crashes = CrashSchedule.random(10, 1.0, 5, seed=1, protect=[0])
        assert crashes.num_crashes() == 9
        trace = simulate_broadcast_faulty(
            RadioNetwork(star10), UniformProtocol(1.0), 0,
            crashes=crashes, seed=2, max_rounds=50,
        )
        assert trace.completed

    def test_full_reliability_trace_identical_to_fault_free(self, gnp_small):
        # reliability = 1.0 goes down the fault path but must reproduce
        # the healthy simulator exactly: same seed, same per-round
        # records, same informed rounds (RNG stream parity).
        from repro.radio import simulate_broadcast

        net = RadioNetwork(gnp_small)
        links = LossyLinkModel(gnp_small, 1.0)
        a = simulate_broadcast(net, UniformProtocol(0.1), 0, seed=11)
        b = simulate_broadcast_faulty(
            net, UniformProtocol(0.1), 0, links=links, seed=11
        )
        assert a.records == b.records
        assert np.array_equal(a.informed_round, b.informed_round)
        assert a.completion_round == b.completion_round

    def test_asymmetric_links_deterministic_under_fixed_seed(self, gnp_small):
        net = RadioNetwork(gnp_small)
        links = LossyLinkModel(gnp_small, 0.7, asymmetric=True)

        def run():
            return simulate_broadcast_faulty(
                net, DecayProtocol(net.n), links=links, seed=9,
                max_rounds=4000, raise_on_incomplete=False,
            )

        a, b = run(), run()
        assert a.records == b.records
        assert np.array_equal(a.informed_round, b.informed_round)

    def test_check_connected_knob(self):
        from repro.graphs import Adjacency

        g = Adjacency.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            simulate_broadcast_faulty(RadioNetwork(g), UniformProtocol(1.0), 0)
        trace = simulate_broadcast_faulty(
            RadioNetwork(g), UniformProtocol(1.0), 0,
            check_connected=False, max_rounds=5, raise_on_incomplete=False,
        )
        assert not trace.completed

    def test_lossy_slower_on_average(self):
        n = 256
        p = 5 * math.log(n) / n
        g = gnp_connected(n, p, seed=7)
        net = RadioNetwork(g)

        def mean_time(links):
            times = []
            for s in range(5):
                tr = simulate_broadcast_faulty(
                    net, DecayProtocol(n), links=links, seed=s, max_rounds=4000
                )
                times.append(tr.completion_round)
            return np.mean(times)

        clean = mean_time(None)
        lossy = mean_time(LossyLinkModel(g, 0.3))
        assert lossy > clean
