"""Unit tests for RNG plumbing (seed normalisation, stream derivation)."""

import numpy as np
import pytest

from repro.rng import as_generator, derive_generator, spawn_generators, spawn_seeds


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        a = as_generator(ss)
        assert isinstance(a, np.random.Generator)


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_seeds(0, 5)) == 5
        assert len(spawn_generators(0, 3)) == 3

    def test_spawn_zero(self):
        assert spawn_seeds(0, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_children_independent_and_reproducible(self):
        a = [g.random() for g in spawn_generators(11, 4)]
        b = [g.random() for g in spawn_generators(11, 4)]
        assert a == b
        assert len(set(a)) == 4  # distinct streams

    def test_generator_seed_consumes_entropy(self):
        # Spawning twice from the same Generator yields different families.
        g = np.random.default_rng(3)
        fam1 = [x.random() for x in spawn_generators(g, 2)]
        fam2 = [x.random() for x in spawn_generators(g, 2)]
        assert fam1 != fam2

    def test_seed_sequence_root(self):
        ss = np.random.SeedSequence(5)
        kids = spawn_seeds(ss, 2)
        assert len(kids) == 2


class TestDeriveGenerator:
    def test_reproducible(self):
        a = derive_generator(9, 1, 2, 3).random(3)
        b = derive_generator(9, 1, 2, 3).random(3)
        assert np.array_equal(a, b)

    def test_keys_matter(self):
        a = derive_generator(9, 1).random()
        b = derive_generator(9, 2).random()
        assert a != b

    def test_base_matters(self):
        a = derive_generator(1, 5).random()
        b = derive_generator(2, 5).random()
        assert a != b

    def test_none_seed_ok(self):
        a = derive_generator(None, 7).random()
        b = derive_generator(None, 7).random()
        assert a == b  # None maps to a fixed base

    def test_spawned_siblings_derive_distinct_streams(self):
        # Spawned children share entropy and differ only in spawn_key;
        # the derivation must not collapse them onto one stream (the
        # parallel executor hands one child per sweep config).
        kids = spawn_seeds(4, 3)
        draws = {derive_generator(kid, 1, 2).random() for kid in kids}
        assert len(draws) == 3

    def test_spawned_sibling_derivation_reproducible(self):
        a = derive_generator(spawn_seeds(4, 2)[1], 5).random()
        b = derive_generator(spawn_seeds(4, 2)[1], 5).random()
        assert a == b

    def test_plain_seed_sequence_unaffected_by_fix(self):
        # A root SeedSequence has an empty spawn_key, so its derivation
        # must match the plain-integer form exactly (existing results
        # stay reproducible).
        a = derive_generator(np.random.SeedSequence(9), 1, 2).random()
        b = derive_generator(9, 1, 2).random()
        assert a == b
