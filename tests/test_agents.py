"""Unit tests for agent-based broadcasting (reference [13] model)."""

import math

import numpy as np
import pytest

from repro.errors import (
    BroadcastIncompleteError,
    DisconnectedGraphError,
    InvalidParameterError,
)
from repro.graphs import Adjacency, complete_graph, cycle_graph, gnp_connected
from repro.singleport import agent_broadcast


class TestAgentBroadcast:
    def test_completes_on_gnp(self):
        n = 256
        g = gnp_connected(n, 4 * math.log(n) / n, seed=80)
        trace = agent_broadcast(g, 32, 0, seed=1)
        assert trace.completed

    def test_no_collisions_in_model(self):
        g = gnp_connected(128, 0.1, seed=81)
        trace = agent_broadcast(g, 16, 0, seed=2)
        assert trace.total_collisions == 0

    def test_more_agents_faster(self):
        n = 256
        g = gnp_connected(n, 4 * math.log(n) / n, seed=82)

        def mean_time(k):
            return np.mean(
                [agent_broadcast(g, k, 0, seed=s).completion_round for s in range(3)]
            )

        assert mean_time(64) < mean_time(4)

    def test_single_agent_completes_on_cycle(self):
        # One walker on a small cycle: pure cover time, still finishes.
        g = cycle_graph(12)
        trace = agent_broadcast(g, 1, 0, seed=3)
        assert trace.completed
        assert trace.completion_round >= 11  # must visit everyone

    def test_agents_start_at_source(self):
        g = complete_graph(30)
        trace = agent_broadcast(g, 10, 0, seed=4, agents_start_at_source=True)
        assert trace.completed
        # On K_n with source-started agents, every hop delivers: fast.
        assert trace.completion_round < 30

    def test_scattered_agents_must_first_find_rumor(self):
        # With agents_start_at_source=False, carriers start at 0 unless an
        # agent happens to sit on the source.
        g = cycle_graph(40)
        trace = agent_broadcast(g, 2, 0, seed=5)
        assert trace.completed

    def test_carrier_count_monotone(self):
        g = gnp_connected(128, 0.1, seed=83)
        trace = agent_broadcast(g, 8, 0, seed=6)
        carriers = [rec.num_transmitters for rec in trace.records]
        assert all(a <= b for a, b in zip(carriers, carriers[1:]))

    def test_informed_curve_monotone(self):
        g = gnp_connected(128, 0.1, seed=84)
        trace = agent_broadcast(g, 8, 0, seed=7)
        assert np.all(np.diff(trace.informed_curve()) >= 0)

    def test_validation(self):
        g = complete_graph(5)
        with pytest.raises(InvalidParameterError):
            agent_broadcast(g, 0, 0)
        with pytest.raises(InvalidParameterError):
            agent_broadcast(g, 1, 9)

    def test_disconnected_rejected(self):
        g = Adjacency.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            agent_broadcast(g, 2, 0)

    def test_budget_exhaustion(self):
        g = cycle_graph(60)
        with pytest.raises(BroadcastIncompleteError) as exc:
            agent_broadcast(g, 1, 0, seed=8, max_rounds=3)
        assert exc.value.trace.num_rounds == 3

    def test_deterministic_given_seed(self):
        g = gnp_connected(100, 0.12, seed=85)
        a = agent_broadcast(g, 8, 0, seed=9).completion_round
        b = agent_broadcast(g, 8, 0, seed=9).completion_round
        assert a == b
