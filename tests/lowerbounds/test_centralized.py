"""Unit tests for the Theorem 6 survival machinery."""


import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graphs import gnp, gnp_connected
from repro.lowerbounds.centralized import (
    relaxed_schedule_survivors,
    rounds_to_inform_all_relaxed,
    sample_transmit_sets,
    survival_probability,
)


class TestSampleTransmitSets:
    def test_fixed_size(self, rng):
        sets = sample_transmit_sets(100, 5, set_size=3, seed=rng)
        assert len(sets) == 5
        assert all(s.size == 3 for s in sets)
        assert all(np.unique(s).size == s.size for s in sets)

    def test_size_range(self, rng):
        sets = sample_transmit_sets(100, 50, set_size=(1, 2), seed=rng)
        sizes = {s.size for s in sets}
        assert sizes <= {1, 2}
        assert len(sizes) == 2  # both sizes appear over 50 draws w.h.p.

    def test_disjoint(self, rng):
        sets = sample_transmit_sets(100, 20, set_size=(1, 2), seed=rng, disjoint=True)
        allv = np.concatenate(sets)
        assert np.unique(allv).size == allv.size

    def test_disjoint_infeasible(self, rng):
        with pytest.raises(InvalidParameterError, match="disjoint"):
            sample_transmit_sets(10, 20, set_size=2, seed=rng, disjoint=True)

    def test_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            sample_transmit_sets(0, 5, set_size=1)
        with pytest.raises(InvalidParameterError):
            sample_transmit_sets(10, 5, set_size=0)
        with pytest.raises(InvalidParameterError):
            sample_transmit_sets(10, 5, set_size=(3, 2))

    def test_zero_rounds(self, rng):
        assert sample_transmit_sets(10, 0, set_size=1, seed=rng) == []


class TestRelaxedSurvivors:
    def test_source_neighborhood_pre_informed(self, star10):
        # Star from hub: neighbourhood = everything, no survivors even with
        # an empty schedule.
        assert relaxed_schedule_survivors(star10, [], 0).size == 0

    def test_empty_schedule_leaves_far_nodes(self, path5):
        survivors = relaxed_schedule_survivors(path5, [], 0)
        assert list(survivors) == [2, 3, 4]

    def test_exactly_one_edge_informs(self, path5):
        # Pre-informed: {0, 1}.  S = {2}: nodes 1 and 3 have exactly one
        # edge to S -> 3 becomes informed; the transmitter 2 itself does
        # not (the proof's rule), and 4 hears nothing.
        survivors = relaxed_schedule_survivors(path5, [np.array([2])], 0)
        assert list(survivors) == [2, 4]

    def test_two_edges_block(self):
        # K4 from source 0: N(0) pre-informed = all. Use a path instead:
        # 0-1-2, 0-3, 3-2: S = {1, 3} -> node 2 has two edges: survives.
        from repro.graphs import Adjacency

        g = Adjacency.from_edges(4, [(0, 1), (1, 2), (0, 3), (3, 2)])
        survivors = relaxed_schedule_survivors(g, [np.array([1, 3])], 0)
        assert list(survivors) == [2]

    def test_transmitters_not_informed_by_own_round(self):
        from repro.graphs import Adjacency

        # 0 - 1 - 2 - 3 line; source 0 pre-informs {0,1}. S={3}: node 2
        # hears it, node 3 itself transmits and must stay uninformed.
        g = Adjacency.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        survivors = relaxed_schedule_survivors(g, [np.array([3])], 0)
        assert 3 in survivors  # transmitting does not inform you

    def test_ignores_transmitter_informedness(self, path5):
        # Node 3 is uninformed yet its transmission informs under the
        # relaxed rule — this is what makes the model adversary-friendly.
        survivors = relaxed_schedule_survivors(path5, [np.array([3])], 0)
        assert 2 not in survivors
        assert 4 not in survivors

    def test_source_validation(self, path5):
        with pytest.raises(InvalidParameterError):
            relaxed_schedule_survivors(path5, [], 99)


class TestSurvivalProbability:
    def test_short_schedules_always_survive(self):
        # 1 round of a size-<=2 set on G(64, 1/2): some node always survives.
        prob = survival_probability(
            lambda rng: gnp(64, 0.5, rng),
            num_rounds=1,
            set_size=(1, 2),
            trials=10,
            seed=0,
        )
        assert prob == 1.0

    def test_long_schedules_rarely_survive(self):
        # 40 rounds of size-2 sets on G(64, 1/2): survivors ~ 32 * 2^-40.
        prob = survival_probability(
            lambda rng: gnp(64, 0.5, rng),
            num_rounds=40,
            set_size=2,
            trials=10,
            seed=1,
        )
        assert prob == 0.0

    def test_monotone_in_rounds(self):
        factory = lambda rng: gnp(128, 0.5, rng)
        probs = [
            survival_probability(
                factory, num_rounds=k, set_size=(1, 2), trials=15, seed=2
            )
            for k in (2, 30)
        ]
        assert probs[0] >= probs[1]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            survival_probability(
                lambda rng: gnp(16, 0.5, rng), num_rounds=1, set_size=1, trials=0
            )


class TestRoundsToInformAllRelaxed:
    def test_completes_on_gnp(self):
        g = gnp_connected(256, 16 / 256, seed=3)
        rounds = rounds_to_inform_all_relaxed(g, set_size=16, seed=4)
        assert 1 <= rounds < 200

    def test_grows_with_n(self):
        # Averaged over seeds, larger graphs need more relaxed rounds.
        def mean_rounds(n, seeds):
            vals = []
            for s in seeds:
                g = gnp_connected(n, 16 / n, seed=s)
                vals.append(rounds_to_inform_all_relaxed(g, set_size=n // 16, seed=s))
            return np.mean(vals)

        small = mean_rounds(128, range(4))
        large = mean_rounds(1024, range(4))
        assert large > small

    def test_budget_exhaustion_raises(self):
        g = gnp_connected(256, 16 / 256, seed=5)
        with pytest.raises(RuntimeError, match="failed to inform"):
            rounds_to_inform_all_relaxed(g, set_size=1, seed=6, max_rounds=1)

    def test_validation(self):
        g = gnp_connected(64, 0.2, seed=7)
        with pytest.raises(InvalidParameterError):
            rounds_to_inform_all_relaxed(g, set_size=4, max_rounds=0)
