"""Unit tests for the Theorem 8 oblivious-family sweep."""

import math

import pytest

from repro.broadcast.distributed import ObliviousProtocol
from repro.errors import InvalidParameterError
from repro.graphs import gnp_connected
from repro.lowerbounds.distributed import best_oblivious_time, oblivious_candidates
from repro.radio import RadioNetwork


class TestCandidates:
    def test_family_diversity(self):
        cands = oblivious_candidates(512, 0.05)
        names = [c.name for c in cands]
        assert len(names) == len(set(names))  # unique labels
        assert len(cands) >= 15
        assert any("const" in n for n in names)
        assert any("switch" in n for n in names)
        assert any("decay" in n for n in names)
        assert any("harmonic" in n for n in names)

    def test_probabilities_valid(self):
        for proto in oblivious_candidates(256, 0.1):
            for t in (1, 2, 5, 20, 100):
                q = proto.probability_at(t)
                assert 0.0 <= q <= 1.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            oblivious_candidates(1, 0.1)
        with pytest.raises(InvalidParameterError):
            oblivious_candidates(100, 0.0)


class TestBestObliviousTime:
    @pytest.fixture(scope="class")
    def net(self):
        n = 256
        p = 4 * math.log(n) / n
        return RadioNetwork(gnp_connected(n, p, seed=8)), n, p

    def test_returns_best_of_family(self, net):
        network, n, p = net
        cands = oblivious_candidates(n, p)
        best, name, means = best_oblivious_time(
            network, cands, trials=2, seed=0
        )
        assert name in means
        assert best == min(means.values())
        assert len(means) == len(cands)

    def test_best_at_least_diameterish(self, net):
        network, n, p = net
        best, _, _ = best_oblivious_time(
            network, oblivious_candidates(n, p), trials=2, seed=1
        )
        # No oblivious protocol can beat ~ln n / ln d (the diameter).
        assert best >= math.log(n) / math.log(p * n)

    def test_failed_candidates_score_inf(self, net):
        network, n, p = net
        hopeless = [ObliviousProtocol([1e-9], name="silent")]
        best, name, means = best_oblivious_time(
            network, hopeless, trials=1, seed=2, max_rounds=20
        )
        assert math.isinf(means["silent"])
        assert math.isinf(best)

    def test_trials_validation(self, net):
        network, n, p = net
        with pytest.raises(InvalidParameterError):
            best_oblivious_time(network, [], trials=0)
