# Convenience targets for the radio-broadcast reproduction package.

PY ?= python

.PHONY: install test bench quick full examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

quick:
	$(PY) -m repro run-all

full:
	$(PY) -m repro run-all --full --markdown --out results_full.md

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PY) $$f || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
