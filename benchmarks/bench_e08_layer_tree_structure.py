"""E8 — Lemma 3: BFS balls are almost trees."""

import numpy as np

from repro.experiments import run_experiment


def test_e08_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E8", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    # All normalized statistics stay O(1) — bounded, not growing with n.
    assert np.all(result.column("multi-parent frac (layer 2) * d^2") < 30)
    assert np.all(result.column("intra-layer edges / |T_2|") < 2.0)
    assert np.all(result.column("max sibling group / d (layer 2)") < 4.0)
