"""K9 — engineering: multi-host fabric healthy-path overhead.

The fabric (:mod:`repro.experiments.fabric`) moves the supervised
sweep's tasks over TCP to worker processes instead of a local
``ProcessPoolExecutor``.  Its healthy-path costs over the supervised
pool are (a) one-time worker spawn + connect, (b) per-task pickle +
frame + socket round trip, and (c) the coordinator's selector loop.
The design target is that with CPU-bound tasks of tens of ms the
steady-state per-task overhead stays < 10% over the supervised pool at
the same parallelism — the framing is a few hundred bytes per task and
both sides block on real work, not on the protocol.

``measure_fabric_overhead`` times the same task list two ways —
supervised pool at ``jobs=N`` (the PR 5 baseline) and a loopback
fabric with ``workers=N`` — using identical spawned seed children so
the comparison is work-for-work.  Worker startup is reported separately
(``fabric_startup_seconds``, measured with near-empty tasks) so the
steady-state figure is not polluted by process spawn.

The pytest entry points assert CI-noise-tolerant bounds (loopback TCP
plus worker spawn jitter dominate at the ~100 ms scale of a quick run)
and check byte-identity of results; the script mode emits the
``BENCH_fabric.json`` artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_k09_fabric_overhead.py \\
        --quick --out BENCH_fabric.json
"""

from __future__ import annotations

import argparse
import json
import time
from statistics import median

from repro.experiments.fabric import run_fabric_sweep
from repro.experiments.supervisor import SweepTask, run_supervised_sweep

from bench_k08_supervisor_overhead import TASK_DRAWS, busy_task


def make_tasks(count: int, draws: int = TASK_DRAWS) -> list[SweepTask]:
    return [
        SweepTask(key=f"t{i}", fn=busy_task, kwargs={"draws": draws})
        for i in range(count)
    ]


def _time(fn, loops: int) -> float:
    samples = []
    for _ in range(loops):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return median(samples)


def measure_fabric_overhead(
    num_tasks: int, workers: int, loops: int = 2, draws: int = TASK_DRAWS
) -> dict:
    """Supervised pool vs loopback fabric at the same parallelism.

    Every ``run_fabric_sweep`` call here spawns its workers fresh, so
    the raw wall-clock comparison is dominated by interpreter startup
    at quick-bench scale.  The startup cost is measured on its own with
    near-empty tasks and netted out: ``steady_state_overhead_pct`` is
    the per-task protocol cost a long sweep actually pays, while
    ``fabric_overhead_pct`` keeps the raw (startup-inclusive) figure.
    """
    tasks = make_tasks(num_tasks, draws)

    def supervised():
        run_supervised_sweep(tasks, jobs=workers, seed=42)

    def fabric():
        run_fabric_sweep(tasks, seed=42, workers=workers)

    t_sup = _time(supervised, loops)
    t_fab = _time(fabric, loops)
    t_start = measure_fabric_startup(workers, loops)["fabric_startup_seconds"]
    t_steady = max(t_fab - t_start, 0.0)
    return {
        "num_tasks": num_tasks,
        "workers": workers,
        "supervised_seconds": t_sup,
        "fabric_seconds": t_fab,
        "fabric_startup_seconds": t_start,
        "fabric_overhead_pct": 100.0 * (t_fab / t_sup - 1.0),
        "steady_state_overhead_pct": 100.0 * (t_steady / t_sup - 1.0),
    }


def measure_fabric_startup(workers: int, loops: int = 2) -> dict:
    """Spawn + connect + protocol cost with near-zero task work.

    With ``draws=1`` the whole run *is* overhead: worker process spawn,
    TCP connect, HELLO/TASK/ACK/RESULT framing, and teardown.  This is
    the fixed cost a sweep must amortise.
    """
    tasks = make_tasks(workers, draws=1)

    def fabric():
        run_fabric_sweep(tasks, seed=42, workers=workers)

    return {
        "workers": workers,
        "fabric_startup_seconds": _time(fabric, loops),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_k09_fabric_matches_supervised_results():
    tasks = make_tasks(4, draws=1000)
    supervised = run_supervised_sweep(tasks, jobs=1, seed=7)
    fabric = run_fabric_sweep(tasks, seed=7, workers=2)
    assert [o.result for o in fabric] == [o.result for o in supervised]
    assert all(o.status == "ok" for o in fabric)


def test_k09_steady_state_overhead_bounded():
    stats = measure_fabric_overhead(8, workers=2, loops=1)
    print(
        f"\nfabric fan-out: supervised={stats['supervised_seconds'] * 1e3:.0f} ms, "
        f"fabric raw +{stats['fabric_overhead_pct']:.2f}%, "
        f"steady-state +{stats['steady_state_overhead_pct']:.2f}% "
        f"-- design target < 10% steady-state"
    )
    # The 10% target is checked on quiet hardware via the BENCH_fabric
    # artifact; CI shares cores and the startup estimate is itself noisy
    # at the ~100 ms quick-run scale, so the hard bound is generous.
    assert stats["fabric_seconds"] - stats["fabric_startup_seconds"] < (
        2.5 * stats["supervised_seconds"]
    )


def test_k09_startup_cost_bounded():
    stats = measure_fabric_startup(2, loops=1)
    print(
        f"\nfabric startup (2 workers, empty tasks): "
        f"{stats['fabric_startup_seconds'] * 1e3:.0f} ms"
    )
    # Two interpreter spawns plus connect; generous for shared CI boxes.
    assert stats["fabric_startup_seconds"] < 30.0


# ----------------------------------------------------------------------
# Script mode: emit the CI fabric-overhead artifact
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="fabric overhead bench")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer tasks and loops (CI budget)",
    )
    parser.add_argument("--out", default=None, help="write JSON results to this path")
    args = parser.parse_args(argv)

    loops = 1 if args.quick else 2
    task_counts = (8,) if args.quick else (8, 32)
    worker_options = (2,) if args.quick else (2, 4)

    steady = [
        measure_fabric_overhead(count, workers, loops)
        for count in task_counts
        for workers in worker_options
    ]
    startup = [measure_fabric_startup(workers, loops) for workers in worker_options]
    payload = {
        "benchmark": "k09_fabric_overhead",
        "mode": "quick" if args.quick else "full",
        "target_overhead_pct": 10.0,
        "steady_state": steady,
        "startup": startup,
    }
    for row in steady:
        print(
            f"tasks={row['num_tasks']:>3} workers={row['workers']}  supervised "
            f"{row['supervised_seconds'] * 1e3:>7,.1f} ms  fabric raw "
            f"+{row['fabric_overhead_pct']:.2f}%  steady-state "
            f"+{row['steady_state_overhead_pct']:.2f}%"
        )
    for row in startup:
        print(
            f"workers={row['workers']}  startup "
            f"{row['fabric_startup_seconds'] * 1e3:>7,.1f} ms"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
