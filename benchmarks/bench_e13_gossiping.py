"""E13 — gossiping (the paper's open problem): Θ(d ln n) at uniform rates."""

import numpy as np

from repro.experiments import run_experiment


def test_e13_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E13", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    # Gossip is strictly harder than broadcast at every size, and the gap
    # widens with d — the channel-injection bottleneck.
    ratios = result.column("gossip / broadcast")
    assert np.all(ratios > 1.5)
    assert ratios[-1] > ratios[0]
    assert result.fits["gossip vs d ln n"].slope > 0
    # Most of the time goes to accumulating (injecting rumors), not the
    # final dissemination.
    first = result.column("first-complete-node mean")
    total = result.column("gossip mean (uniform 1/d)")
    assert np.all(first > 0.5 * total)
