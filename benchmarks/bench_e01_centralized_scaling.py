"""E1 — Theorem 5: centralized broadcast scaling in n (DESIGN.md §4).

Regenerates the schedule-length-vs-n table for the Theorem 5 algorithm and
its baselines, plus the A1/A2/A3 ablations of the scheduler's design
choices (DESIGN.md §5).
"""

import numpy as np
import pytest

from repro.broadcast.centralized import ElsasserGasieniecScheduler
from repro.experiments import run_experiment
from repro.graphs import gnp_connected
from repro.radio import RadioNetwork, verify_schedule


def test_e01_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E1", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    eg = result.column("eg mean")
    seq = result.column("sequential mean")
    ns = result.column("n")
    # Shape assertions: EG grows sublinearly, sequential ~ linearly in n.
    assert eg[-1] / eg[0] < 2.0
    assert seq[-1] / seq[0] > 4.0
    assert np.all(seq > eg)


@pytest.mark.parametrize(
    "label,kwargs",
    [
        ("baseline", {}),
        ("A1-singleton-cleanup", {"cleanup": "singleton"}),
        ("A2-no-parity", {"use_parity": False}),
        ("A3-reused-fractions", {"fresh_fractions": False}),
        ("A4-half-selectivity", {"selectivity": 0.5}),
        ("A4-double-selectivity", {"selectivity": 2.0}),
    ],
)
def test_e01_scheduler_ablations(benchmark, label, kwargs):
    """A1–A4: schedule length under each design-choice ablation."""
    n, d = 600, 16.0
    g = gnp_connected(n, d / n, seed=42)

    def build():
        return ElsasserGasieniecScheduler(seed=1, **kwargs).build(g, 0)

    schedule = benchmark.pedantic(build, rounds=1, iterations=1)
    assert verify_schedule(RadioNetwork(g), schedule, 0)
    print(f"\n[E1 ablation {label}] rounds={len(schedule)} "
          f"transmissions={schedule.total_transmissions}")
