"""E11 — radio vs single-port: collisions cost a constant factor on G(n,p)."""

import numpy as np

from repro.experiments import run_experiment


def test_e11_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E11", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    ratios = result.column("radio / push")
    # Same growth law: the ratio stays within constant bounds across the
    # ladder rather than drifting with n.
    assert np.all(ratios < 4.0)
    assert np.all(ratios > 0.25)
    # Push-pull is the fastest of the three everywhere.
    assert np.all(result.column("push-pull mean") <= result.column("push mean"))
