"""K2 — engineering: G(n, p) / G(n, m) generation throughput.

Generation must stay O(n + m): these benches cover the sparse path, the
dense complement path, and G(n, m)'s exact-count sampler.
"""

import pytest

from repro.graphs import gnm, gnp
from repro.graphs.random_graphs import pair_count


@pytest.mark.parametrize(
    "n,p,label",
    [
        (100_000, 20 / 100_000, "sparse-100k-d20"),
        (10_000, 0.01, "medium-10k-p0.01"),
        (2_000, 0.8, "dense-2k-p0.8"),
    ],
)
def test_k02_gnp(benchmark, n, p, label):
    g = benchmark(gnp, n, p, 42)
    assert g.n == n


def test_k02_gnm(benchmark):
    n, m = 50_000, 500_000
    g = benchmark(gnm, n, m, 43)
    assert g.num_edges == m


def test_k02_gnm_dense(benchmark):
    n = 1500
    m = int(0.9 * pair_count(n))
    g = benchmark(gnm, n, m, 44)
    assert g.num_edges == m
