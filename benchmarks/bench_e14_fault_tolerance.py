"""E14 — fault tolerance: graceful degradation under lossy links + crashes."""

import numpy as np

from repro.experiments import run_experiment


def test_e14_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E14", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    eg = result.column("eg mean")
    decay = result.column("decay mean")
    rel = result.column("link reliability")
    # At full reliability EG keeps its speed advantage.
    assert eg[0] < decay[0]
    # Degradation: EG at the lossiest setting is slower than EG clean.
    finite_eg = eg[np.isfinite(eg)]
    assert finite_eg[-1] > finite_eg[0]
    # Both protocols still succeed at moderate loss (reliability >= 0.5).
    ok_rows = rel >= 0.5
    assert np.all(result.column("eg success")[ok_rows] >= 0.8)
    assert np.all(result.column("decay success")[ok_rows] >= 0.8)
