"""E14 — fault tolerance: graceful degradation under adversarial fault plans."""

import numpy as np

from repro.experiments import run_experiment


def test_e14_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E14", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    scenarios = [r["scenario"] for r in result.rows]
    eg_mean = result.column("eg mean")
    decay_mean = result.column("decay mean")
    eg_ok = result.column("eg success")
    decay_ok = result.column("decay success")
    res_ok = result.column("resilient success")

    # Fault-free: EG keeps its speed advantage over Decay, everyone completes.
    assert scenarios[0] == "fault-free"
    assert eg_mean[0] < decay_mean[0]
    assert eg_ok[0] == decay_ok[0] == res_ok[0] == 1.0

    # Benign faults (crashes, mild loss): all three protocols stay reliable.
    benign = [i for i, s in enumerate(scenarios) if s in ("crashes 10%", "lossy links r=0.9")]
    for col in (eg_ok, decay_ok, res_ok):
        assert np.all(col[benign] >= 0.8)

    # Degradation is graceful: EG under mild loss is slower than EG clean
    # but still finishes.
    mild = scenarios.index("lossy links r=0.9")
    assert np.isfinite(eg_mean[mild]) and eg_mean[mild] > eg_mean[0]

    # The headline gap: under forgetful churn the strict Theorem 7 rule
    # stalls (coverage holes are permanent) while the epoch-restart
    # wrapper of the *same rule* completes.
    churn = next(i for i, s in enumerate(scenarios) if s.startswith("churn"))
    assert res_ok[churn] >= 0.8
    assert eg_ok[churn] < res_ok[churn]

    # The wrapper never costs success anywhere in the table.
    assert np.all(res_ok >= eg_ok)
