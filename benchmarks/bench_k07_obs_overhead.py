"""K7 — engineering: observability-layer overhead.

The acceptance bound for the observability layer is that the *no-op
path* — instrumented engines run with no registry or sink attached —
costs <= 5% of a round's work.  The per-run cost of that path is one
``current_observer()`` context-variable read; the per-round cost is one
``obs is None`` branch.  ``measure_noop_guard`` times those primitives
directly and compares them against the measured per-round cost of the
batch engine, which is robust against CI timing noise (the ratio is a
few hundredths of a percent, not a wall-clock diff between two runs).

``measure_observed_overhead`` reports the *opt-in* cost: the same batch
and serial workloads run off vs under a metrics registry vs under a full
registry + in-memory sink observer.  That overhead is allowed to be
visible (it buys per-round events); it is reported, not bounded.

Also runnable as a script for the CI artifact::

    PYTHONPATH=src python benchmarks/bench_k07_obs_overhead.py --quick \\
        --out BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import time
from statistics import median

import numpy as np

from repro.broadcast.distributed.uniform import UniformProtocol
from repro.graphs import gnp
from repro.obs import MemoryTraceSink, MetricsRegistry, Observer, use_observer
from repro.obs.context import current_observer
from repro.radio import RadioNetwork
from repro.radio.engine import run_broadcast, run_broadcast_batch


def make_case(n: int, seed: int = 1):
    p = 2 * np.log(n) / n
    net = RadioNetwork(gnp(n, p, seed=seed))
    net.adj.matrix()
    proto = UniformProtocol(1.0 / (p * (n - 1)))
    return net, proto, p


def _time(fn, loops: int) -> float:
    """Median wall-clock seconds of ``loops`` calls."""
    samples = []
    for _ in range(loops):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return median(samples)


def measure_noop_guard(n: int, repetitions: int, loops: int = 3) -> dict:
    """Per-round cost of the absent-observer guard vs the round itself.

    The guard is ``obs = current_observer()`` once per run plus
    ``if obs is not None`` once per round; both are timed over a million
    iterations.  The engine's per-round cost comes from an unobserved
    batch run.  The ratio is the no-op overhead the <= 5% bound is about.
    """
    net, proto, p = make_case(n)

    iters = 1_000_000
    start = time.perf_counter()
    for _ in range(iters):
        obs = current_observer()
        if obs is not None:  # pragma: no cover - never taken here
            raise AssertionError
    guard_s = (time.perf_counter() - start) / iters

    result = None

    def run():
        nonlocal result
        result = run_broadcast_batch(
            net, proto, repetitions=repetitions, seed=123, p=p, max_rounds=4096
        )

    engine_s = _time(run, loops)
    rounds = result.num_rounds
    per_round_s = engine_s / max(rounds, 1)
    return {
        "n": n,
        "repetitions": repetitions,
        "rounds": rounds,
        "guard_seconds_per_round": guard_s,
        "engine_seconds_per_round": per_round_s,
        "noop_overhead_pct": 100.0 * guard_s / per_round_s,
    }


def measure_observed_overhead(n: int, repetitions: int, loops: int = 3) -> dict:
    """Opt-in cost: off vs registry-only vs registry + memory sink."""
    net, proto, p = make_case(n)
    kwargs = dict(repetitions=repetitions, seed=123, p=p, max_rounds=4096)

    def batch_off():
        run_broadcast_batch(net, proto, **kwargs)

    def batch_under(make_obs):
        def run():
            with use_observer(make_obs()):
                run_broadcast_batch(net, proto, **kwargs)

        return run

    def serial_off():
        for rep in range(8):
            run_broadcast(net, proto, seed=1000 + rep, p=p, max_rounds=4096)

    def serial_full():
        obs = Observer(MetricsRegistry(), MemoryTraceSink())
        with use_observer(obs):
            serial_off()

    t_off = _time(batch_off, loops)
    t_registry = _time(batch_under(lambda: Observer(MetricsRegistry())), loops)
    t_full = _time(
        batch_under(lambda: Observer(MetricsRegistry(), MemoryTraceSink())), loops
    )
    t_serial_off = _time(serial_off, loops)
    t_serial_full = _time(serial_full, loops)
    return {
        "n": n,
        "repetitions": repetitions,
        "batch_off_seconds": t_off,
        "batch_registry_seconds": t_registry,
        "batch_full_seconds": t_full,
        "batch_registry_overhead_pct": 100.0 * (t_registry / t_off - 1.0),
        "batch_full_overhead_pct": 100.0 * (t_full / t_off - 1.0),
        "serial_off_seconds": t_serial_off,
        "serial_full_seconds": t_serial_full,
        "serial_full_overhead_pct": 100.0 * (t_serial_full / t_serial_off - 1.0),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_k07_noop_overhead_under_5pct():
    stats = measure_noop_guard(1_000, 32)
    print(
        f"\nno-op guard: {stats['guard_seconds_per_round'] * 1e9:,.0f} ns/round "
        f"vs engine {stats['engine_seconds_per_round'] * 1e6:,.0f} us/round "
        f"-> {stats['noop_overhead_pct']:.4f}% overhead"
    )
    assert stats["noop_overhead_pct"] <= 5.0


def test_k07_observed_runs_match_unobserved():
    net, proto, p = make_case(1_000)
    kwargs = dict(repetitions=16, seed=123, p=p, max_rounds=4096)
    plain = run_broadcast_batch(net, proto, **kwargs)
    with use_observer(Observer(MetricsRegistry(), MemoryTraceSink())):
        observed = run_broadcast_batch(net, proto, **kwargs)
    np.testing.assert_array_equal(plain.completion_rounds, observed.completion_rounds)


def test_k07_observed_overhead_reported():
    stats = measure_observed_overhead(1_000, 16, loops=2)
    print(
        f"\nbatch n=1000 R=16: off={stats['batch_off_seconds'] * 1e3:.1f} ms, "
        f"registry +{stats['batch_registry_overhead_pct']:.1f}%, "
        f"full +{stats['batch_full_overhead_pct']:.1f}%"
    )
    # Opt-in instrumentation may cost, but not multiples of the run.
    assert stats["batch_full_seconds"] < 10 * stats["batch_off_seconds"]


# ----------------------------------------------------------------------
# Script mode: emit the CI observability-overhead artifact
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="observability overhead bench")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sizes and fewer loops (CI budget)",
    )
    parser.add_argument("--out", default=None, help="write JSON results to this path")
    args = parser.parse_args(argv)

    sizes = (1_000,) if args.quick else (1_000, 10_000)
    reps = 16 if args.quick else 64
    loops = 2 if args.quick else 3

    noop = [measure_noop_guard(n, reps, loops) for n in sizes]
    observed = [measure_observed_overhead(n, reps, loops) for n in sizes]
    payload = {
        "benchmark": "k07_obs_overhead",
        "mode": "quick" if args.quick else "full",
        "noop": noop,
        "observed": observed,
    }
    for row in noop:
        print(
            f"n={row['n']:>6}  no-op guard "
            f"{row['guard_seconds_per_round'] * 1e9:>6,.0f} ns/round vs engine "
            f"{row['engine_seconds_per_round'] * 1e6:>8,.0f} us/round  "
            f"-> {row['noop_overhead_pct']:.4f}%"
        )
    for row in observed:
        print(
            f"n={row['n']:>6}  batch: registry "
            f"+{row['batch_registry_overhead_pct']:.1f}%  full "
            f"+{row['batch_full_overhead_pct']:.1f}%  serial full "
            f"+{row['serial_full_overhead_pct']:.1f}%"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
