"""K11 — engineering: job-server request latency, cache-hit vs cold.

Measures the full front-door path — HTTP request framing, spec
canonicalisation, cache lookup, execution, response — against a real
loopback server, separating:

* **cold** submissions (unique seeds: every request executes), and
* **warm** resubmissions of one spec (every request is a content-address
  cache hit: no execution, the stored document is replayed).

The gap between the two is what the content-addressed cache buys; the
warm latency is the floor cost of the service layer itself (parse +
hash + disk read + serialise).  Correctness is asserted inline: warm
responses must be byte-identical to the cold response for the same spec
and must not add executions.

Also runnable as a script for the CI artifact::

    PYTHONPATH=src python benchmarks/bench_k11_serve_latency.py --quick \\
        --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.schema import canonical_json
from repro.serve import Client, JobManager, JobSpec, Server

GRAPH = {"n": 60, "p": 0.15, "seed": 1}


def make_spec(seed: int) -> JobSpec:
    return JobSpec(
        process="broadcast",
        graph=dict(GRAPH),
        params={"protocol": {"kind": "decay"}},
        seed=seed,
        max_rounds=400,
    )


class LoopbackServer:
    """A real HTTP job server on an ephemeral loopback port."""

    def __init__(self, cache_dir):
        self.manager = JobManager(cache=cache_dir, workers=2)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )
        self._thread.start()
        self.server = Server(manager=self.manager)
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        ).result(10)
        self.address = self.server.address

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.close(), self._loop
        ).result(10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self.manager.shutdown()


def _percentiles(samples: list[float]) -> dict:
    arr = np.asarray(samples)
    return {
        "count": int(arr.size),
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p95_ms": float(np.percentile(arr, 95) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
    }


def run_bench(*, quick: bool = True) -> dict:
    cold_n = 10 if quick else 40
    warm_n = 30 if quick else 200
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        loopback = LoopbackServer(tmp + "/cache")
        try:
            client = Client(loopback.address)
            # Cold: unique seeds, every request executes.
            cold_samples = []
            for seed in range(cold_n):
                start = time.perf_counter()
                status = client.submit(make_spec(1000 + seed))
                cold_samples.append(time.perf_counter() - start)
                assert status.ok and status.cache == "miss"
            executions_after_cold = loopback.manager.num_executions
            assert executions_after_cold == cold_n
            # Warm: one spec resubmitted; every request is a cache hit
            # returning the byte-identical document.
            reference = client.submit(make_spec(1000)).result
            warm_samples = []
            for _ in range(warm_n):
                start = time.perf_counter()
                status = client.submit(make_spec(1000))
                warm_samples.append(time.perf_counter() - start)
                assert status.cache == "hit"
                assert canonical_json(status.result) == canonical_json(
                    reference
                )
            assert loopback.manager.num_executions == executions_after_cold
            hits = loopback.manager.registry.counter_value("serve.cache.hits")
            cold = _percentiles(cold_samples)
            warm = _percentiles(warm_samples)
            return {
                "bench": "serve_latency",
                "mode": "quick" if quick else "full",
                "graph": GRAPH,
                "cold": cold,
                "warm": warm,
                "cache_hits": int(hits),
                "executions": int(loopback.manager.num_executions),
                "speedup_p50": cold["p50_ms"] / max(warm["p50_ms"], 1e-9),
            }
        finally:
            loopback.close()


class TestServeLatency:
    def test_warm_requests_skip_execution(self):
        report = run_bench(quick=True)
        # The reference resubmit is itself a hit, so executions == cold.
        assert report["executions"] == report["cold"]["count"]
        assert report["cache_hits"] >= report["warm"]["count"]
        assert report["warm"]["p50_ms"] > 0
        assert report["cold"]["p50_ms"] > 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default=None, metavar="PATH")
    args = parser.parse_args()
    report = run_bench(quick=args.quick)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
