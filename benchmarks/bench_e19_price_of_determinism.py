"""E19 — the price of determinism: selective family / id-slot vs randomized."""

import numpy as np

from repro.experiments import run_experiment


def test_e19_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E19", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    eg = result.column("eg mean (randomized)")
    sel = result.column("selective-family rounds")
    ids = result.column("id-slot rounds")
    # Randomized wins against both deterministic baselines at every size.
    assert np.all(sel > eg)
    assert np.all(ids > eg)
    # The id-slot penalty grows with n (polynomial vs logarithmic).
    ratios = result.column("id-slot / eg")
    assert ratios[-1] > ratios[0]
