"""E22 — §1.1: results transfer between G(n, p) and Erdős–Rényi G(n, m)."""

import numpy as np

from repro.experiments import run_experiment


def test_e22_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E22", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    ratios = result.column("ratio (gnm/gnp, protocol)")
    # Statistically indistinguishable at matched edge budgets.
    assert np.all(ratios > 0.7)
    assert np.all(ratios < 1.4)
    # Centralized schedules agree within a couple of rounds too.
    diff = np.abs(
        result.column("gnp schedule rounds") - result.column("gnm schedule rounds")
    )
    assert np.all(diff <= 4)
