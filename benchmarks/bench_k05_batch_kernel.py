"""K5 — engineering: batched multi-trial round kernel throughput.

Measures the serial vs batched ``protocol_times`` paths in trial-rounds
per second (one trial-round = advancing one Monte-Carlo trial by one
radio round).  The batched path must hold a >= 5x advantage at the
acceptance point (n = 10 000, R = 64, uniform protocol); equivalence of
the two paths is pinned separately by ``tests/radio/test_batch.py``.

Also runnable as a script for the CI artifact::

    PYTHONPATH=src python benchmarks/bench_k05_batch_kernel.py --quick \\
        --out BENCH_kernels.json
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np
import pytest

from repro.broadcast.distributed.uniform import UniformProtocol
from repro.experiments.runner import protocol_times
from repro.graphs import gnp
from repro.radio import FunctionProtocol, RadioNetwork


def make_case(n: int, seed: int = 1):
    p = 2 * np.log(n) / n
    net = RadioNetwork(gnp(n, p, seed=seed))
    net.adj.matrix()
    proto = UniformProtocol(1.0 / (p * (n - 1)))
    return net, proto, p


def serial_proxy(protocol) -> FunctionProtocol:
    """Non-batch twin: same draws, pre-batch ``protocol_times`` path."""
    proxy = FunctionProtocol(protocol.transmit_mask, name=f"serial-{protocol.name}")
    proxy.prepare = protocol.prepare
    return proxy


def measure_throughput(n: int, repetitions: int, seed: int = 123) -> dict:
    """Trial-rounds/sec of both paths plus the speedup, with equality check."""
    net, proto, p = make_case(n)
    kwargs = dict(repetitions=repetitions, seed=seed, p=p, max_rounds=4096)

    start = time.perf_counter()
    serial = protocol_times(net, serial_proxy(proto), **kwargs)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    batch = protocol_times(net, proto, **kwargs)
    t_batch = time.perf_counter() - start

    if not np.array_equal(serial, batch):
        raise AssertionError("batched path diverged from serial path")
    trial_rounds = float(np.sum(np.where(np.isfinite(serial), serial, 4096)))
    return {
        "n": n,
        "repetitions": repetitions,
        "trial_rounds": trial_rounds,
        "serial_seconds": t_serial,
        "batch_seconds": t_batch,
        "serial_trial_rounds_per_sec": trial_rounds / t_serial,
        "batch_trial_rounds_per_sec": trial_rounds / t_batch,
        "speedup": t_serial / t_batch,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------


@pytest.fixture(scope="module", params=[1_000, 10_000], ids=["n1k", "n10k"])
def batch_case(request):
    net, proto, p = make_case(request.param)
    return net, proto, p


def test_k05_batch_path(benchmark, batch_case):
    net, proto, p = batch_case
    rounds = benchmark(
        protocol_times, net, proto, repetitions=64, seed=123, p=p, max_rounds=4096
    )
    assert rounds.shape == (64,)


def test_k05_serial_path(benchmark, batch_case):
    net, proto, p = batch_case
    rounds = benchmark(
        protocol_times,
        net,
        serial_proxy(proto),
        repetitions=64,
        seed=123,
        p=p,
        max_rounds=4096,
    )
    assert rounds.shape == (64,)


def test_k05_speedup_at_acceptance_point():
    stats = measure_throughput(10_000, 64)
    print(
        f"\nn=10000 R=64 uniform: serial={stats['serial_trial_rounds_per_sec']:,.0f} "
        f"tr/s, batch={stats['batch_trial_rounds_per_sec']:,.0f} tr/s, "
        f"speedup={stats['speedup']:.2f}x"
    )
    assert stats["speedup"] >= 5.0


# ----------------------------------------------------------------------
# Script mode: emit the CI kernel-throughput artifact
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="batched kernel throughput bench")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer repetitions per size (CI budget)",
    )
    parser.add_argument("--out", default=None, help="write JSON results to this path")
    args = parser.parse_args(argv)

    reps = 16 if args.quick else 64
    results = [measure_throughput(n, reps) for n in (1_000, 10_000)]
    payload = {
        "benchmark": "k05_batch_kernel",
        "mode": "quick" if args.quick else "full",
        "results": results,
    }
    for row in results:
        print(
            f"n={row['n']:>6}  R={row['repetitions']}  "
            f"serial={row['serial_trial_rounds_per_sec']:>10,.0f} tr/s  "
            f"batch={row['batch_trial_rounds_per_sec']:>10,.0f} tr/s  "
            f"speedup={row['speedup']:.2f}x"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
