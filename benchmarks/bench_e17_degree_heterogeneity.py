"""E17 — degree heterogeneity: power-law degrees break the 1/d tuning."""


from repro.experiments import run_experiment


def test_e17_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E17", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["graph"]: r for r in result.rows}
    gnp_eg = rows["gnp (uniform)"]["eg mean"]
    # The single-scale EG protocol slows down on every power-law case —
    # sharply on the heavy tails, at least measurably at gamma = 3 (the
    # mildest tail, closest to uniform degrees).
    for name, row in rows.items():
        if not name.startswith("chung-lu"):
            continue
        gamma = float(name.split("=")[1])
        factor = 1.2 if gamma < 3.0 else 1.05
        assert row["eg mean"] > factor * gnp_eg, name
    # ...while Decay's multi-scale phase sweep stays within 25% of its
    # uniform-degree time (robustness to degree spread).
    gnp_decay = rows["gnp (uniform)"]["decay mean"]
    for name, row in rows.items():
        if name.startswith("chung-lu"):
            assert row["decay mean"] < 1.25 * gnp_decay
