"""K10 — engineering: kernel-backend throughput and crossover.

Measures the batched round kernel (``Adjacency.neighbor_counts_batch``)
under every *available* backend — numpy (scatter/matmul hybrid), numba
(compiled ``prange`` loop), cupy (device spmm) — at protocol-realistic
transmitter densities, up to n = 10^6 in full mode.  Reports raw kernel
calls/sec per backend and the per-density scatter-vs-matmul crossover of
the numpy hybrid, so a machine's calibrated ``scatter_cost`` can be
sanity-checked against a measured curve.

Every measurement cross-checks the counts against the default backend —
a backend that wins the benchmark by diverging fails it instead.

Also runnable as a script for the CI artifact::

    PYTHONPATH=src python benchmarks/bench_k10_backends.py --quick \\
        --out BENCH_backends.json
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np
import pytest

from repro.backends import (
    NumpyBackend,
    available_backend_names,
    get_backend,
    use_backend,
)
from repro.graphs import gnp
from repro.radio import RadioNetwork

#: Transmitter densities bracketing the scatter/matmul crossover; the
#: protocols of the paper transmit at ~1/d ≈ 1/(2 ln n).
DENSITIES = (0.01, 0.06, 0.25)


def make_adjacency(n: int, seed: int = 1):
    p = 2 * np.log(n) / n
    adj = gnp(n, p, seed=seed)
    adj.matrix()  # exclude one-off CSR assembly from every timing
    return adj


def _masks(n: int, reps: int, density: float, seed: int = 123):
    return np.random.default_rng(seed).random((n, reps)) < density


def _time_calls(fn, *, min_seconds: float = 0.05, max_calls: int = 50) -> float:
    """Best-effort per-call seconds: repeat until the clock resolves."""
    calls, elapsed = 0, 0.0
    best = float("inf")
    while elapsed < min_seconds and calls < max_calls:
        start = time.perf_counter()
        fn()
        dt = time.perf_counter() - start
        elapsed += dt
        calls += 1
        best = min(best, dt)
    return best


def measure_backend(name: str, n: int, reps: int, density: float) -> dict:
    """Per-call seconds for one backend, with a parity check vs numpy."""
    adj = make_adjacency(n)
    masks = _masks(n, reps, density)
    reference = NumpyBackend().neighbor_counts_batch(adj, masks)
    with use_backend(name):
        backend = get_backend()
        backend.calibrate()
        counts = backend.neighbor_counts_batch(adj, masks)
        if not np.array_equal(counts, reference):
            raise AssertionError(f"backend {name!r} diverged from numpy counts")
        seconds = _time_calls(lambda: backend.neighbor_counts_batch(adj, masks))
    cells = adj.indices.size * reps
    return {
        "backend": name,
        "n": n,
        "repetitions": reps,
        "density": density,
        "seconds_per_call": seconds,
        "cells_per_sec": cells / seconds if seconds else float("inf"),
        "path": backend._last_path,
    }


def measure_crossover(n: int, reps: int) -> list[dict]:
    """Scatter vs matmul timings of the numpy hybrid across densities."""
    adj = make_adjacency(n)
    backend = NumpyBackend()
    rows = []
    for density in DENSITIES:
        masks = _masks(n, reps, density)
        t_scatter = _time_calls(lambda: backend._scatter_from_masks(adj, masks))
        t_matmul = _time_calls(lambda: backend._matmul(adj, masks))
        rows.append(
            {
                "n": n,
                "repetitions": reps,
                "density": density,
                "scatter_seconds": t_scatter,
                "matmul_seconds": t_matmul,
                "scatter_over_matmul": t_scatter / t_matmul,
            }
        )
    return rows


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------


@pytest.fixture(scope="module", params=[1_000, 10_000], ids=["n1k", "n10k"])
def kernel_case(request):
    adj = make_adjacency(request.param)
    return adj, _masks(request.param, 64, 0.06)


@pytest.mark.parametrize("name", available_backend_names())
def test_k10_backend_batch_kernel(benchmark, kernel_case, name):
    adj, masks = kernel_case
    with use_backend(name):
        backend = get_backend()
        backend.calibrate()
        counts = benchmark(backend.neighbor_counts_batch, adj, masks)
    assert np.array_equal(counts, NumpyBackend().neighbor_counts_batch(adj, masks))


def test_k10_backends_agree_at_acceptance_point():
    results = [
        measure_backend(name, 10_000, 64, 0.06)
        for name in available_backend_names()
    ]
    for row in results:
        print(
            f"\n{row['backend']:>6} n={row['n']} R={row['repetitions']} "
            f"density={row['density']}: {row['cells_per_sec']:,.0f} cells/s "
            f"({row['path']})"
        )
    assert results  # numpy is always available; parity checked inside


# ----------------------------------------------------------------------
# Script mode: emit the CI backend-throughput artifact
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="kernel backend throughput bench")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes and fewer repetitions (CI budget)",
    )
    parser.add_argument("--out", default=None, help="write JSON results to this path")
    args = parser.parse_args(argv)

    sizes = (1_000, 10_000) if args.quick else (10_000, 100_000, 1_000_000)
    reps = 16 if args.quick else 64
    backends = available_backend_names()

    results = [
        measure_backend(name, n, reps, density)
        for n in sizes
        for density in DENSITIES
        for name in backends
    ]
    crossover = measure_crossover(sizes[0], reps)
    payload = {
        "benchmark": "k10_backends",
        "mode": "quick" if args.quick else "full",
        "backends": backends,
        "scatter_cost": NumpyBackend().calibrate(),
        "results": results,
        "crossover": crossover,
    }
    for row in results:
        print(
            f"n={row['n']:>8}  R={row['repetitions']}  d={row['density']:<5} "
            f"{row['backend']:>6}  {row['cells_per_sec']:>14,.0f} cells/s  "
            f"path={row['path']}"
        )
    print(f"calibrated scatter_cost: {payload['scatter_cost']:.2f}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
