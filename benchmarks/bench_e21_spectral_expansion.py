"""E21 — spectral gap vs broadcast time across graph families."""


from repro.experiments import run_experiment


def test_e21_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E21", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    gaps = result.column("spectral gap")
    times = result.column("decay mean")
    # Regime separation: every gap >= 0.05 family beats every gap < 0.05
    # family.
    fast = times[gaps >= 0.05]
    slow = times[gaps < 0.05]
    assert fast.size and slow.size
    assert fast.max() < slow.min()
    # Sanity on the spectra themselves: hypercube(10) gap = 2/10 exactly.
    rows = {r["family"]: r for r in result.rows}
    assert abs(rows["hypercube(10)"]["spectral gap"] - 0.2) < 1e-6
