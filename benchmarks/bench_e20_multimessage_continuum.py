"""E20 — k-token dissemination: broadcast morphing into gossip."""

import numpy as np

from repro.experiments import run_experiment


def test_e20_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E20", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    times = result.column("rounds mean")
    # Monotone-ish growth in k...
    assert times[-1] > 2 * times[0]
    assert np.all(np.diff(times) > -10)
    # ...with saturation: full gossip costs at most ~20% more than k=64.
    assert times[-1] < 1.3 * times[-2]
