"""E7 — Lemma 3: BFS layer sizes grow like d^i."""

import numpy as np

from repro.experiments import run_experiment


def test_e07_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E7", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    # Geometric growth: both normalized layer sizes near 1.
    assert np.all(np.abs(result.column("|T1|/d") - 1.0) < 0.5)
    assert np.all(np.abs(result.column("|T2|/d^2") - 1.0) < 0.6)
    # O(1) big layers at every size.
    assert np.all(result.column("layers >= n/d") <= 4)
