"""E6 — Theorem 8: the best oblivious protocol still needs Ω(ln n)."""

import numpy as np

from repro.experiments import run_experiment


def test_e06_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E6", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    # Growth: the family minimum increases with n and keeps a positive
    # ln n slope (the lower-bound signature).
    assert result.fits["best vs ln n"].slope > 0
    ratios = result.column("best / ln n")
    assert np.all(ratios > 0.8)
