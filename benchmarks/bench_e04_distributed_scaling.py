"""E4 — Theorem 7: distributed randomized broadcast is O(ln n).

Also carries the A4 transmit-probability ablation for the distributed
protocol (selectivity sweep).
"""

import numpy as np
import pytest

from repro.broadcast.distributed import EGRandomizedProtocol
from repro.experiments import run_experiment
from repro.experiments.runner import protocol_times
from repro.graphs import gnp_connected
from repro.radio import RadioNetwork


def test_e04_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E4", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    for name in ("d = 4 ln n vs ln n", "d = sqrt(n) vs ln n"):
        assert result.fits[name].slope > 0
    # Sublinear growth: 16x the nodes, < 3x the rounds.
    means = result.column("d = 4 ln n mean")
    assert means[-1] / means[0] < 3.0


@pytest.mark.parametrize("selectivity", [0.25, 0.5, 1.0, 2.0, 4.0])
def test_e04_selectivity_ablation(benchmark, selectivity):
    """A4: completion time as the selective probability c/d varies."""
    import math

    n = 1024
    p = 4 * math.log(n) / n
    g = gnp_connected(n, p, seed=77)
    net = RadioNetwork(g)

    def run():
        return protocol_times(
            net,
            EGRandomizedProtocol(n, p, selectivity=selectivity),
            repetitions=5,
            seed=3,
            p=p,
            max_rounds=5000,
        )

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    finite = times[np.isfinite(times)]
    assert finite.size >= 4  # at most one budget miss tolerated
    print(f"\n[E4 ablation selectivity={selectivity}] mean={finite.mean():.1f}")
