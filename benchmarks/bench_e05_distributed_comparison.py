"""E5 — Theorem 7 vs baselines: EG beats Decay on G(n, p)."""

import numpy as np

from repro.experiments import run_experiment


def test_e05_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E5", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    # Who wins: EG beats Decay at every size; the factor is > 1.3.
    ratios = result.column("decay / eg")
    assert np.all(ratios > 1.3)
    # Uniform 1/d pays a start-up penalty over EG at every size.
    assert np.all(result.column("uniform 1/d mean") > result.column("eg mean"))
