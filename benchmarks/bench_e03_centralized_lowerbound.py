"""E3 — Theorem 6: survival of uninformed nodes under short schedules."""


from repro.experiments import run_experiment


def test_e03_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E3", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    probs = [r["survival prob"] for r in result.rows if r.get("survival prob") is not None]
    # Threshold shape: certain survival at small c, near-certain failure at
    # large c (c* = 1/ln 2 under the relaxed rule).
    assert probs[0] == 1.0
    assert probs[-1] <= 0.2
    # Panel B: relaxed informing time grows with ln n (positive slope).
    assert result.fits["relaxed rounds vs ln n"].slope > 0
