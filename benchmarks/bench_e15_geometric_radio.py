"""E15 — random geometric graphs: the physical model is diameter-bound."""

import numpy as np

from repro.experiments import run_experiment


def test_e15_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E15", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    # RGG broadcast time tracks the (growing) diameter...
    fit = result.fits["rgg decay vs diameter"]
    assert fit.slope > 0
    assert fit.r_squared > 0.7
    # ...and exceeds the matched-degree G(n,p) time at the largest size.
    rgg = result.column("rgg decay mean")
    gnp = result.column("gnp decay mean (same d)")
    assert rgg[-1] > gnp[-1]
    # The age-based frontier protocol beats Decay on RGG everywhere.
    assert np.all(result.column("rgg age-based mean") < rgg)
