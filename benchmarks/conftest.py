"""Shared benchmark fixtures.

Each experiment bench runs its catalog entry once under pytest-benchmark
timing, prints the regenerated table, and archives it under
``benchmarks/results/`` so the reproduced numbers survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Callable: write an ExperimentResult's table to results/<id>.txt."""

    def _record(result, name: str | None = None):
        stem = (name or result.experiment_id).lower()
        path = results_dir / f"{stem}.txt"
        path.write_text(result.table() + "\n")
        print()
        print(result.table())
        return path

    return _record
