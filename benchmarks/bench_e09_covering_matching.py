"""E9 — Lemma 4 + Proposition 2: covers and matchings between random sets."""

import numpy as np

from repro.experiments import run_experiment


def test_e09_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E9", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    coverage = result.column("indep-cover coverage")
    completeness = result.column("matching completeness")
    # Lemma 4 part 1: a constant fraction covered in every regime.
    assert np.all(coverage > 0.25)
    # Part 2: completeness approaches 1 as |X|/|Y| reaches d².
    assert completeness[-1] > 0.9
    assert np.all(np.diff(completeness) > -0.05)  # increasing in |X|/|Y|
