"""E12 — graph-family robustness: the diameter penalty outside expanders."""


from repro.experiments import run_experiment


def test_e12_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E12", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["family"]: r for r in result.rows}
    torus = next(k for k in rows if k.startswith("torus"))
    # The torus (diameter 32) pays the diameter at both protocols.
    assert rows[torus]["eg mean"] > 2 * rows["gnp d=16"]["eg mean"]
    assert rows[torus]["decay mean"] > 2 * rows["gnp d=16"]["decay mean"]
    # Random-regular behaves like G(n,p) (within 2x).
    assert (
        rows["random-regular d=16"]["eg mean"] < 2 * rows["gnp d=16"]["eg mean"]
    )
