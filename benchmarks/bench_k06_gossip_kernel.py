"""K6 — engineering: batched gossip-family sweep throughput.

Measures the serial vs batched ``gossip_times`` / ``multimessage_times``
paths in trial-rounds per second (one trial-round = advancing one
Monte-Carlo gossip trial by one radio round).  The batched path runs all
repetitions in vectorized lockstep with informer extraction
(:func:`repro.gossip.batch.run_gossip_batch`); the serial proxy forces
the pre-refactor per-trial loop.  The two paths are asserted equal here
and pinned bit-for-bit by ``tests/radio/test_dynamics.py``.

Also runnable as a script for the CI artifact::

    PYTHONPATH=src python benchmarks/bench_k06_gossip_kernel.py --quick \\
        --out BENCH_gossip.json
"""

from __future__ import annotations

import argparse
import json
import math
import time

import numpy as np
import pytest

from repro.broadcast.distributed.uniform import UniformProtocol
from repro.experiments.runner import gossip_times, multimessage_times
from repro.graphs import gnp_connected
from repro.radio import FunctionProtocol, RadioNetwork


def make_case(n: int, seed: int = 1):
    d = 4.0 * math.log(n)
    net = RadioNetwork(gnp_connected(n, d / n, seed=seed))
    net.adj.matrix()
    return net, UniformProtocol(min(1.0, 1.0 / d))


def serial_proxy(protocol) -> FunctionProtocol:
    """Non-batch twin: same draws, per-trial ``simulate_gossip`` path."""
    proxy = FunctionProtocol(protocol.transmit_mask, name=f"serial-{protocol.name}")
    proxy.prepare = protocol.prepare
    return proxy


def measure_throughput(n: int, repetitions: int, *, tokens: int | None = None, seed: int = 123) -> dict:
    """Trial-rounds/sec of both paths plus the speedup, with equality check."""
    net, proto = make_case(n)
    if tokens is None:
        kwargs = dict(repetitions=repetitions, seed=seed, max_rounds=8192)
        times = lambda protocol: gossip_times(net, protocol, **kwargs)  # noqa: E731
    else:
        sources = np.arange(tokens, dtype=np.int64)
        kwargs = dict(repetitions=repetitions, seed=seed, max_rounds=8192)
        times = lambda protocol: multimessage_times(net, protocol, sources, **kwargs)  # noqa: E731

    start = time.perf_counter()
    serial = times(serial_proxy(proto))
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    batch = times(proto)
    t_batch = time.perf_counter() - start

    if not np.array_equal(serial, batch):
        raise AssertionError("batched gossip path diverged from serial path")
    trial_rounds = float(np.sum(np.where(np.isfinite(serial), serial, 8192)))
    return {
        "n": n,
        "tokens": n if tokens is None else tokens,
        "repetitions": repetitions,
        "trial_rounds": trial_rounds,
        "serial_seconds": t_serial,
        "batch_seconds": t_batch,
        "serial_trial_rounds_per_sec": trial_rounds / t_serial,
        "batch_trial_rounds_per_sec": trial_rounds / t_batch,
        "speedup": t_serial / t_batch,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------


@pytest.fixture(scope="module", params=[256, 512], ids=["n256", "n512"])
def gossip_case(request):
    return make_case(request.param)


def test_k06_batch_path(benchmark, gossip_case):
    net, proto = gossip_case
    rounds = benchmark(
        gossip_times, net, proto, repetitions=8, seed=123, max_rounds=8192
    )
    assert rounds.shape == (8,)


def test_k06_serial_path(benchmark, gossip_case):
    net, proto = gossip_case
    rounds = benchmark(
        gossip_times,
        net,
        serial_proxy(proto),
        repetitions=8,
        seed=123,
        max_rounds=8192,
    )
    assert rounds.shape == (8,)


def test_k06_speedup_at_acceptance_point():
    stats = measure_throughput(512, 8)
    print(
        f"\nn=512 R=8 gossip: serial={stats['serial_trial_rounds_per_sec']:,.0f} "
        f"tr/s, batch={stats['batch_trial_rounds_per_sec']:,.0f} tr/s, "
        f"speedup={stats['speedup']:.2f}x"
    )
    assert stats["speedup"] >= 2.0


# ----------------------------------------------------------------------
# Script mode: emit the CI gossip-throughput artifact
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="batched gossip sweep throughput bench")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer repetitions per size (CI budget)",
    )
    parser.add_argument("--out", default=None, help="write JSON results to this path")
    args = parser.parse_args(argv)

    reps = 8 if args.quick else 16
    results = [measure_throughput(n, reps) for n in (256, 512)]
    results.append(measure_throughput(512, reps, tokens=16))
    payload = {
        "benchmark": "k06_gossip_kernel",
        "mode": "quick" if args.quick else "full",
        "results": results,
    }
    for row in results:
        print(
            f"n={row['n']:>5}  k={row['tokens']:>4}  R={row['repetitions']}  "
            f"serial={row['serial_trial_rounds_per_sec']:>10,.0f} tr/s  "
            f"batch={row['batch_trial_rounds_per_sec']:>10,.0f} tr/s  "
            f"speedup={row['speedup']:.2f}x"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
