"""K1 — engineering: radio round-kernel throughput.

The hot path of every experiment is :meth:`RadioNetwork.step` (two sparse
matvecs plus boolean algebra).  These benches time it at realistic sizes so
performance regressions in the kernel are caught before they silently
stretch every experiment.
"""

import numpy as np
import pytest

from repro.graphs import gnp
from repro.radio import RadioNetwork


@pytest.fixture(scope="module")
def big_network():
    n, d = 50_000, 20.0
    g = gnp(n, d / n, seed=1)
    net = RadioNetwork(g)
    net.adj.matrix()  # pre-build the cached CSR matrix
    rng = np.random.default_rng(2)
    informed = rng.random(n) < 0.5
    transmitting = (rng.random(n) < 0.1) & informed
    return net, transmitting, informed


def test_k01_step_kernel(benchmark, big_network):
    net, transmitting, informed = big_network
    result = benchmark(net.step, transmitting, informed)
    assert result.num_transmitters == int(np.count_nonzero(transmitting))


def test_k01_neighbor_counts(benchmark, big_network):
    net, transmitting, _ = big_network
    counts = benchmark(net.adj.neighbor_counts, transmitting)
    assert counts.shape == (net.n,)


def test_k01_reference_kernel_small(benchmark):
    """The pure-Python oracle at a size where it is still usable."""
    g = gnp(400, 0.05, seed=3)
    net = RadioNetwork(g)
    rng = np.random.default_rng(4)
    informed = rng.random(400) < 0.5
    transmitting = (rng.random(400) < 0.1) & informed
    benchmark(net.step_reference, transmitting, informed)
