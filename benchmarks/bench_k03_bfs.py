"""K3 — engineering: BFS / layer-decomposition throughput."""

import pytest

from repro.graphs import gnp
from repro.graphs.bfs import bfs_distances, bfs_tree
from repro.graphs.layers import LayerDecomposition


@pytest.fixture(scope="module")
def big_graph():
    n, d = 100_000, 16.0
    return gnp(n, d / n, seed=5)


def test_k03_bfs_distances(benchmark, big_graph):
    dist = benchmark(bfs_distances, big_graph, 0)
    assert dist.shape == (big_graph.n,)


def test_k03_bfs_tree(benchmark, big_graph):
    dist, parent = benchmark(bfs_tree, big_graph, 0)
    assert parent.shape == (big_graph.n,)


def test_k03_layer_decomposition_full(benchmark, big_graph):
    def decompose():
        ld = LayerDecomposition(big_graph, 0)
        # Force the cached statistics the experiments read.
        ld.sizes
        ld.intra_layer_edge_counts
        ld.parent_counts
        return ld

    ld = benchmark.pedantic(decompose, rounds=1, iterations=1)
    assert ld.num_reached > 0
