"""K4 — engineering: gossip knowledge-matrix round throughput."""

import pytest

from repro.broadcast.distributed import UniformProtocol
from repro.errors import BroadcastIncompleteError
from repro.gossip import simulate_gossip
from repro.graphs import gnp
from repro.radio import RadioNetwork


@pytest.fixture(scope="module")
def gossip_setup():
    n, d = 2000, 20.0
    g = gnp(n, d / n, seed=9)
    net = RadioNetwork(g)
    net.adj.matrix()
    return net, min(1.0, 1.0 / d)


def test_k04_gossip_rounds(benchmark, gossip_setup):
    """Fixed 50-round gossip burst on a 2000-node network (4M-entry matrix)."""
    net, q = gossip_setup

    def run():
        try:
            return simulate_gossip(
                net, UniformProtocol(q), seed=3, max_rounds=50,
                check_connected=False,
            )
        except BroadcastIncompleteError as exc:
            return exc.trace

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    assert trace.num_rounds == 50
    assert trace.records[-1].pairs_known > net.n  # knowledge actually grew
