"""E23 — agent-based broadcasting (paper reference [13])."""

import numpy as np

from repro.experiments import run_experiment


def test_e23_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E23", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    times = result.column("rounds mean")
    ks = result.column("agents k")
    # Strictly decreasing in the agent count.
    assert np.all(np.diff(times) < 0)
    # Cover-time regime: k * rounds stays within one order of magnitude
    # over a 64x change in k at the small end.
    invariant = result.column("k * rounds")
    assert invariant[2] / invariant[0] < 10
    # Big fleets approach the log-n floor: 256 agents are > 20x faster
    # than a lone walker and finish in well under 100 rounds.
    assert times[-1] < 0.05 * times[0]
    assert times[-1] < 100
