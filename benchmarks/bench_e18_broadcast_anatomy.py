"""E18 — anatomy of a broadcast: tree depth, branching, efficiency."""

import numpy as np

from repro.experiments import run_experiment


def test_e18_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E18", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    # The realised tree is at most a few layers deeper than BFS.
    extra = result.column("tree depth mean") - result.column("bfs depth")
    assert np.all(extra >= 0)
    assert np.all(extra < 5)
    # One-to-many gain survives collisions: > 1 new node per transmission.
    assert np.all(result.column("efficiency (new/tx)") > 1.0)
    # A minority of nodes ever relay.
    assert np.all(result.column("relay fraction") < 0.5)
