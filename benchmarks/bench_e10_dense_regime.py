"""E10 — dense regime: Θ(ln n / ln(1/f)) rounds for p = 1 - f(n)."""


from repro.experiments import run_experiment


def test_e10_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E10", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    fit = result.fits["rounds vs ln n/ln(1/f)"]
    assert fit.slope > 0
    assert fit.r_squared > 0.7
    # Within each n, smaller f (denser graph) means fewer rounds.
    rows = result.rows
    by_n = {}
    for r in rows:
        by_n.setdefault(r["n"], []).append((r["f"], r["rounds mean"]))
    for n, series in by_n.items():
        series.sort(reverse=True)  # descending f
        rounds = [t for _, t in series]
        assert rounds[0] >= rounds[-1]
