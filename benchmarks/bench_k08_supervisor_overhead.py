"""K8 — engineering: supervised-executor healthy-path overhead.

The supervision layer (:mod:`repro.experiments.supervisor`) wraps the
parallel sweep's ``ProcessPoolExecutor`` with deadlines, crash recovery
and structured outcomes.  Its design target is that the *healthy path*
— no crashes, no timeouts, no retries — costs < 2% over driving a raw
pool directly: supervision replaces unbounded ``future.result()`` calls
with a ``wait``-loop and some dict bookkeeping, none of which should be
visible next to real task work.

``measure_pool_overhead`` times the same task list three ways — raw
``ProcessPoolExecutor`` (the unsupervised floor), supervised fan-out,
and supervised fan-out with a deadline armed (the wait-loop's timeout
arithmetic on every iteration) — using identical spawned seed children
so the comparison is work-for-work.  ``measure_serial_overhead`` does
the same for ``jobs=1``, where supervision is a plain in-process loop.

The pytest entry point asserts a CI-noise-tolerant bound (pool startup
and scheduler jitter dominate at the ~100 ms scale of a quick run) and
*reports* the 2% target; the script mode emits the ``BENCH_exec.json``
artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_k08_supervisor_overhead.py \\
        --quick --out BENCH_exec.json
"""

from __future__ import annotations

import argparse
import json
import time
from concurrent.futures import ProcessPoolExecutor
from statistics import median

import numpy as np

from repro.experiments.supervisor import SweepTask, run_supervised_sweep
from repro.rng import spawn_seeds

#: Draws per task: tens of ms of numpy RNG work, big enough that per-task
#: executor bookkeeping is measured against real work, small enough for CI.
TASK_DRAWS = 1_000_000


def busy_task(seed, *, draws: int = TASK_DRAWS, rounds: int = 4) -> float:
    """CPU-bound work with a scalar payload.

    The result must stay tiny — the benchmark measures executor
    bookkeeping, and a large return value would bury it under
    result-pickling and IPC transfer costs.
    """
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(rounds):
        total += float(rng.random(draws).sum())
    return total


def make_tasks(count: int, draws: int = TASK_DRAWS) -> list[SweepTask]:
    return [
        SweepTask(key=f"t{i}", fn=busy_task, kwargs={"draws": draws})
        for i in range(count)
    ]


def run_raw_pool(tasks, *, jobs: int, seed) -> list:
    """The unsupervised floor: submit everything, collect in order."""
    children = spawn_seeds(seed, len(tasks))
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(task.fn, seed=child, **task.kwargs)
            for task, child in zip(tasks, children)
        ]
        return [future.result() for future in futures]


def _time(fn, loops: int) -> float:
    samples = []
    for _ in range(loops):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return median(samples)


def measure_pool_overhead(
    num_tasks: int, jobs: int, loops: int = 3, draws: int = TASK_DRAWS
) -> dict:
    """Raw pool vs supervised vs supervised-with-deadline, same work."""
    tasks = make_tasks(num_tasks, draws)

    def raw():
        run_raw_pool(tasks, jobs=jobs, seed=42)

    def supervised():
        run_supervised_sweep(tasks, jobs=jobs, seed=42)

    def supervised_deadline():
        # A generous deadline that never fires: measures the wait-loop's
        # per-iteration timeout arithmetic, not any recovery.
        run_supervised_sweep(tasks, jobs=jobs, seed=42, task_timeout=600.0)

    t_raw = _time(raw, loops)
    t_sup = _time(supervised, loops)
    t_dead = _time(supervised_deadline, loops)
    return {
        "num_tasks": num_tasks,
        "jobs": jobs,
        "raw_pool_seconds": t_raw,
        "supervised_seconds": t_sup,
        "supervised_deadline_seconds": t_dead,
        "supervised_overhead_pct": 100.0 * (t_sup / t_raw - 1.0),
        "deadline_overhead_pct": 100.0 * (t_dead / t_raw - 1.0),
    }


def measure_serial_overhead(
    num_tasks: int, loops: int = 3, draws: int = TASK_DRAWS
) -> dict:
    """jobs=1: supervised in-process loop vs calling the tasks directly."""
    tasks = make_tasks(num_tasks, draws)

    def direct():
        for task, child in zip(tasks, spawn_seeds(42, len(tasks))):
            task.fn(seed=child, **task.kwargs)

    def supervised():
        run_supervised_sweep(tasks, jobs=1, seed=42)

    t_direct = _time(direct, loops)
    t_sup = _time(supervised, loops)
    return {
        "num_tasks": num_tasks,
        "direct_seconds": t_direct,
        "supervised_seconds": t_sup,
        "supervised_overhead_pct": 100.0 * (t_sup / t_direct - 1.0),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_k08_supervised_matches_raw_pool_results():
    tasks = make_tasks(4, draws=1000)
    raw = run_raw_pool(tasks, jobs=2, seed=7)
    outcomes = run_supervised_sweep(tasks, jobs=2, seed=7)
    assert [o.result for o in outcomes] == raw


def test_k08_healthy_path_overhead_bounded():
    stats = measure_pool_overhead(8, jobs=2, loops=2)
    print(
        f"\nsupervised fan-out: raw={stats['raw_pool_seconds'] * 1e3:.0f} ms, "
        f"supervised +{stats['supervised_overhead_pct']:.2f}% "
        f"(+deadline {stats['deadline_overhead_pct']:.2f}%) "
        f"-- design target < 2%"
    )
    # The 2% target is checked on quiet hardware via the BENCH_exec
    # artifact; CI shares cores, so the hard assertion is noise-tolerant.
    assert stats["supervised_seconds"] < 1.5 * stats["raw_pool_seconds"]


def test_k08_serial_supervision_overhead_bounded():
    stats = measure_serial_overhead(6, loops=2)
    print(
        f"\nserial supervision: direct={stats['direct_seconds'] * 1e3:.0f} ms, "
        f"supervised +{stats['supervised_overhead_pct']:.2f}%"
    )
    assert stats["supervised_seconds"] < 1.5 * stats["direct_seconds"]


# ----------------------------------------------------------------------
# Script mode: emit the CI executor-overhead artifact
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="supervised executor bench")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer tasks and loops (CI budget)",
    )
    parser.add_argument("--out", default=None, help="write JSON results to this path")
    args = parser.parse_args(argv)

    loops = 2 if args.quick else 3
    task_counts = (8,) if args.quick else (8, 32)
    jobs_options = (2,) if args.quick else (2, 4)

    pooled = [
        measure_pool_overhead(count, jobs, loops)
        for count in task_counts
        for jobs in jobs_options
    ]
    serial = [measure_serial_overhead(6 if args.quick else 16, loops)]
    payload = {
        "benchmark": "k08_supervisor_overhead",
        "mode": "quick" if args.quick else "full",
        "target_overhead_pct": 2.0,
        "pooled": pooled,
        "serial": serial,
    }
    for row in pooled:
        print(
            f"tasks={row['num_tasks']:>3} jobs={row['jobs']}  raw "
            f"{row['raw_pool_seconds'] * 1e3:>7,.1f} ms  supervised "
            f"+{row['supervised_overhead_pct']:.2f}%  with-deadline "
            f"+{row['deadline_overhead_pct']:.2f}%"
        )
    for row in serial:
        print(
            f"tasks={row['num_tasks']:>3} serial  direct "
            f"{row['direct_seconds'] * 1e3:>7,.1f} ms  supervised "
            f"+{row['supervised_overhead_pct']:.2f}%"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
