"""E16 — adaptive age-based protocol vs the oblivious class."""


from repro.experiments import run_experiment


def test_e16_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E16", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    rows = {r["family"]: r for r in result.rows}
    # On G(n,p) the adaptive rule is competitive with EG (within 50%).
    assert rows["gnp d=16"]["age-based mean"] < 1.5 * rows["gnp d=16"]["eg mean"]
    # Off G(n,p) it beats both oblivious baselines.
    for fam in ("torus 32x32", "rgg"):
        assert rows[fam]["age-based mean"] < rows[fam]["eg mean"]
        assert rows[fam]["age-based mean"] < rows[fam]["decay mean"]
