"""E2 — Theorem 5: the ln n/ln d vs ln d crossover in d (DESIGN.md §4)."""

import numpy as np

from repro.experiments import run_experiment


def test_e02_table(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_experiment("E2", quick=True, seed=0), rounds=1, iterations=1
    )
    record_result(result)
    means = result.column("eg mean")
    ds = result.column("d")
    # The sweep is not monotone: a minimum exists strictly inside the
    # range (the crossover), i.e. the largest-d time exceeds the minimum.
    assert means[-1] > means.min()
    # The measured minimum sits at moderate degree, not at either extreme.
    argmin_d = ds[int(np.argmin(means))]
    assert ds.min() <= argmin_d < ds.max()
