"""Setup shim: enables legacy editable installs on environments without
the `wheel` package (PEP 660 editable builds need it; `pip install -e .
--no-use-pep517 --no-build-isolation` does not)."""
from setuptools import setup

setup()
