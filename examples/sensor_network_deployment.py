"""Scenario: choosing a flood protocol for an ad-hoc sensor deployment.

The paper's motivation: wireless nodes scattered with random connectivity
need to disseminate an alert from one sensor to all others.  Nodes share a
radio channel (simultaneous transmissions collide) and know only the
deployment parameters (n, expected degree) — not the topology.

This example pits the three distributed protocols against each other on
the same deployments and reports completion time *and* energy (total
transmissions), the two costs a deployment engineer trades off.

Run:  python examples/sensor_network_deployment.py
"""

import math

import numpy as np

from repro import (
    DecayProtocol,
    EGRandomizedProtocol,
    RadioNetwork,
    gnp_connected,
)
from repro.broadcast.distributed import UniformProtocol
from repro.graphs import random_regular
from repro.radio import simulate_broadcast
from repro.rng import spawn_generators


def evaluate(name, network, protocol_factory, p=None, reps=10, seed=0):
    """Mean completion rounds and transmissions across repetitions."""
    rounds, energy = [], []
    for rng in spawn_generators(seed, reps):
        trace = simulate_broadcast(
            network, protocol_factory(), source=0, p=p, seed=rng, max_rounds=20_000
        )
        rounds.append(trace.completion_round)
        energy.append(trace.total_transmissions)
    return name, float(np.mean(rounds)), float(np.max(rounds)), float(np.mean(energy))


def run_deployment(title, graph, n, d):
    print(f"\n=== {title}: n={n}, avg degree {graph.average_degree:.1f} ===")
    network = RadioNetwork(graph)
    p_eff = d / n
    rows = [
        evaluate("EG randomized (Thm 7)", network,
                 lambda: EGRandomizedProtocol(n, p_eff), p=p_eff, seed=1),
        evaluate("Decay (BGI)", network, lambda: DecayProtocol(n), seed=2),
        evaluate("Uniform 1/d", network,
                 lambda: UniformProtocol(min(1.0, 1.0 / d)), seed=3),
    ]
    print(f"{'protocol':<24} {'mean rounds':>12} {'max rounds':>11} {'mean energy':>12}")
    for name, mean_r, max_r, mean_e in rows:
        print(f"{name:<24} {mean_r:>12.1f} {max_r:>11.0f} {mean_e:>12.0f}")
    winner = min(rows, key=lambda r: r[1])
    print(f"fastest: {winner[0]}")


def main() -> None:
    n = 1024
    d = 4 * math.log(n)

    # Deployment A: fully random connectivity (the paper's G(n, p)).
    run_deployment(
        "random scatter (G(n,p))", gnp_connected(n, d / n, seed=11), n, d
    )

    # Deployment B: engineered d-regular mesh (every node the same radio
    # budget) — the protocols only know n and d, exactly as before.
    deg = 2 * int(d / 2)
    run_deployment(
        f"engineered {deg}-regular mesh", random_regular(n, deg, seed=12), n, deg
    )

    print(
        "\nTakeaway: with collisions on a shared channel, the Theorem 7 "
        "protocol finishes fastest on both deployments, and its selective "
        "phase also keeps energy (transmissions) below Decay's full-power "
        "first-of-phase rounds."
    )


if __name__ == "__main__":
    main()
