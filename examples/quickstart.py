"""Quickstart: broadcast a message through a random radio network.

Generates a supercritical G(n, p), runs the paper's distributed randomized
protocol (Theorem 7), and prints what happened round by round.

Run:  python examples/quickstart.py
"""

import math

from repro import (
    EGRandomizedProtocol,
    RadioNetwork,
    gnp_connected,
    simulate_broadcast,
)
from repro.theory.bounds import distributed_bound


def main() -> None:
    # A 1000-node network with expected degree d = 4 ln n — comfortably
    # above the connectivity threshold, the regime the paper analyses.
    n = 1000
    p = 4 * math.log(n) / n
    graph = gnp_connected(n, p, seed=7)
    print(f"network: {graph}")

    network = RadioNetwork(graph)
    protocol = EGRandomizedProtocol(n, p)
    print(
        f"protocol: non-selective for {protocol.switch_round - 1} rounds, "
        f"then one n/d^D round (q={protocol.switch_probability:.3f}), "
        f"then 1/d-selective (q={protocol.selective_probability:.3f})"
    )

    trace = simulate_broadcast(network, protocol, source=0, p=p, seed=42)

    print(f"\nbroadcast completed in {trace.completion_round} rounds "
          f"(paper bound: O(ln n), ln n = {distributed_bound(n):.1f})")
    print(f"total transmissions: {trace.total_transmissions}")
    print(f"listeners lost to collisions (sum over rounds): {trace.total_collisions}")

    print("\nround  transmitters  newly informed  informed total")
    for rec in trace.records:
        print(
            f"{rec.round_index:>5}  {rec.num_transmitters:>12}  "
            f"{rec.num_new:>14}  {rec.informed_after:>14}"
        )

    from repro.experiments.report import format_sparkline

    print(f"\ninformed curve: {format_sparkline(trace.informed_curve())}")


if __name__ == "__main__":
    main()
