"""Scenario: watching the lower bounds bite (Theorems 6 and 8).

Part 1 replays the Theorem 6 proof's relaxed adversary model: random
transmit-set sequences of the proof's size-≤2 family leave some node
uninformed until the round budget passes c* · ln n — the survival
probability collapses at a sharp threshold.

Part 2 sweeps a whole family of topology-oblivious protocols (the class
Theorem 8 quantifies over) and shows that even the best one cannot beat
Ω(ln n).

Run:  python examples/lower_bound_demo.py
"""

import math

from repro import RadioNetwork, gnp, gnp_connected
from repro.lowerbounds import (
    best_oblivious_time,
    oblivious_candidates,
    survival_probability,
)


def part1_survival() -> None:
    n = 256
    trials = 30
    print(f"=== Theorem 6: survival under short schedules (G({n}, 1/2)) ===")
    print("relaxed adversary model; transmit sets of size 1-2, k = c ln n rounds")
    print(f"{'c':>6} {'rounds':>7} {'P[some node survives]':>23}")
    for c in (0.25, 0.5, 1.0, 1.44, 2.0, 3.0):
        k = max(1, round(c * math.log(n)))
        prob = survival_probability(
            lambda rng: gnp(n, 0.5, rng),
            num_rounds=k,
            set_size=(1, 2),
            trials=trials,
            seed=int(c * 100),
            disjoint=True,
        )
        print(f"{c:>6.2f} {k:>7} {prob:>23.2f}")
    print(f"(theory: threshold at c* = 1/ln 2 ≈ {1 / math.log(2):.2f})")


def part2_oblivious() -> None:
    print("\n=== Theorem 8: the best oblivious protocol still needs Ω(ln n) ===")
    print(f"{'n':>6} {'ln n':>6} {'best mean rounds':>17} {'best candidate':>20}")
    for i, n in enumerate([128, 256, 512, 1024]):
        p = 4 * math.log(n) / n
        network = RadioNetwork(gnp_connected(n, p, seed=50 + i))
        best, name, _ = best_oblivious_time(
            network, oblivious_candidates(n, p), trials=3, seed=i
        )
        print(f"{n:>6} {math.log(n):>6.2f} {best:>17.1f} {name:>20}")
    print(
        "\nTakeaway: scaling n up by 8x raises even the best oblivious "
        "completion time in step with ln n — no amount of probability-"
        "sequence tuning escapes the Theorem 8 bound."
    )


if __name__ == "__main__":
    part1_survival()
    part2_oblivious()
