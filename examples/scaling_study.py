"""Scenario: measuring and fitting the protocols' growth laws.

A condensed version of experiments E1/E4: sweep network sizes, measure
centralized schedule lengths and distributed completion times, then let
:mod:`repro.theory.fitting` decide which growth law explains the data —
turning the paper's O(·) statements into numbers you can check.

Run:  python examples/scaling_study.py
"""

import math

import numpy as np

from repro import (
    EGRandomizedProtocol,
    ElsasserGasieniecScheduler,
    RadioNetwork,
    gnp_connected,
)
from repro.radio import repeat_broadcast
from repro.theory.bounds import centralized_bound, distributed_bound
from repro.theory.fitting import compare_models, linear_fit


def main() -> None:
    ns = [128, 256, 512, 1024, 2048]
    reps = 5

    cen_rounds, dist_rounds = [], []
    print(f"{'n':>6} {'d':>7} {'centralized':>12} {'distributed':>12} "
          f"{'bound C':>8} {'bound D':>8}")
    for i, n in enumerate(ns):
        p = 4 * math.log(n) / n
        graph = gnp_connected(n, p, seed=100 + i)
        network = RadioNetwork(graph)

        schedule = ElsasserGasieniecScheduler(seed=i).build(graph, 0)
        cen = len(schedule)
        dist = float(np.mean(repeat_broadcast(
            network, EGRandomizedProtocol(n, p), repetitions=reps, seed=i, p=p
        )))
        cen_rounds.append(cen)
        dist_rounds.append(dist)
        print(f"{n:>6} {p * n:>7.1f} {cen:>12} {dist:>12.1f} "
              f"{centralized_bound(n, p):>8.1f} {distributed_bound(n):>8.1f}")

    print("\nfits against ln n:")
    print(" centralized:", linear_fit(np.log(ns), np.array(cen_rounds, float), "ln n"))
    print(" distributed:", linear_fit(np.log(ns), np.array(dist_rounds), "ln n"))

    best, results = compare_models(np.array(ns, float), np.array(dist_rounds))
    print("\nwhich growth law explains the distributed times best?")
    for name, fit in sorted(results.items(), key=lambda kv: -kv[1].r_squared):
        print(f"  {name:<8} R² = {fit.r_squared:.4f}")
    print(f"winner at this ladder: {best}")
    gap = results["n"].r_squared - results["ln n"].r_squared
    print(
        "note: at laptop-scale ladders the logarithmic laws (ln n, ln ln n) "
        "are near-ties — the decisive Theorem 7 signature is that both "
        f"beat polynomial growth (ln n vs n R² gap: {-gap:.3f}); the full "
        "E4 experiment extends the ladder for a sharper separation"
    )


if __name__ == "__main__":
    main()
