"""Scenario: diagnosing *why* a topology broadcasts fast (or doesn't).

Given a zoo of candidate topologies, this example computes each one's
spectral gap, predicts its broadcast regime from the mixing scale
`ln n / gap`, then validates the prediction by simulation and dissects
one run's broadcast tree — the full mechanism-analysis workflow built on
`repro.theory.spectra` and `repro.radio.analysis`.

Run:  python examples/expander_analysis.py
"""

import math

import numpy as np

from repro import DecayProtocol, RadioNetwork, gnp_connected, hypercube, torus_2d
from repro.broadcast.distributed import AgeBasedProtocol
from repro.graphs import random_geometric_connected, random_regular
from repro.radio import broadcast_tree, simulate_broadcast, transmission_efficiency
from repro.rng import spawn_generators
from repro.theory.spectra import estimate_mixing_time, spectral_gap


def main() -> None:
    n = 1024
    zoo = {
        "G(n,p), d=16": gnp_connected(n, 16 / n, seed=71),
        "16-regular": random_regular(n, 16, seed=72),
        "hypercube(10)": hypercube(10),
        "RGG (unit square)": random_geometric_connected(n, seed=73),
        "torus 32x32": torus_2d(32, 32),
    }

    print("=== Part 1: spectra predict the broadcast regime ===")
    print(f"{'topology':<18} {'gap':>8} {'ln n/gap':>9} {'predicted':>12} {'measured':>9}")
    rows = []
    for idx, (name, g) in enumerate(zoo.items()):
        gap = spectral_gap(g)
        mixing = estimate_mixing_time(g)
        predicted = "O(ln n)" if gap > 0.05 else "diameter"
        times = []
        for rng in spawn_generators(idx, 5):
            trace = simulate_broadcast(
                RadioNetwork(g), DecayProtocol(n), 0, seed=rng, max_rounds=30000
            )
            times.append(trace.completion_round)
        measured = float(np.mean(times))
        rows.append((name, gap, measured))
        print(f"{name:<18} {gap:>8.4f} {mixing:>9.1f} {predicted:>12} {measured:>9.1f}")

    fast = [t for _, gap, t in rows if gap > 0.05]
    slow = [t for _, gap, t in rows if gap <= 0.05]
    print(
        f"\nregime split honoured: max(expander) = {max(fast):.0f} < "
        f"min(small-gap) = {min(slow):.0f}"
    )

    print("\n=== Part 2: dissecting one broadcast tree (G(n,p)) ===")
    g = zoo["G(n,p), d=16"]
    net = RadioNetwork(g)
    trace = simulate_broadcast(
        net, AgeBasedProtocol(n, 16 / n), 0, seed=99, max_rounds=5000
    )
    tree = broadcast_tree(trace)
    counts = tree.children_counts()
    print(f"completion: {trace.completion_round} rounds, tree depth {tree.depth}")
    print(f"relays: {tree.num_relays()} of {n} nodes "
          f"({tree.num_relays() / n:.0%}); best informer reached "
          f"{int(counts.max())} nodes")
    print(f"transmissions per newly informed node: "
          f"{1 / transmission_efficiency(trace):.2f}")
    hist = tree.branching_histogram()
    top = ", ".join(f"{k}:{hist[k]}" for k in range(min(6, hist.size)))
    print(f"branching histogram (children: count) {top} ...")
    print(
        "\nReading: a handful of high-branching nodes — informed early, "
        "transmitting into still-dark neighbourhoods — carry the whole "
        "broadcast; the spectral gap is what guarantees such "
        "neighbourhoods keep existing at every scale."
    )


if __name__ == "__main__":
    main()
