"""Scenario: dissemination in a hostile deployment — faults and gossip.

Two production concerns the core theorems idealise away:

1. **Things fail.**  Part 1 stress-tests the Theorem 7 protocol and Decay
   under node crashes and increasingly lossy links, reporting completion
   time and success rate — the robustness/speed trade-off a deployment
   has to pick.
2. **Things get hostile.**  Part 2 turns the benign faults into
   adversaries — a roaming jammer and forgetful churn — and shows the
   stock Theorem 7 schedule stalling where the epoch-restarting wrapper
   of the *same rule* completes.  Trials run through the resilient
   sweep engine, so failures land as structured records.
3. **Everyone has something to say.**  Part 3 switches from broadcast
   (one rumor) to gossip (a rumor per node, the paper's open problem) and
   shows where the time goes: injecting n rumors through one shared
   channel, not spreading them.

Run:  python examples/resilient_broadcast.py
"""

import math

import numpy as np

from repro import DecayProtocol, EGRandomizedProtocol, RadioNetwork, gnp_connected
from repro.broadcast.distributed import EpochRestartProtocol, UniformProtocol
from repro.experiments import run_resilient_sweep
from repro.faults import (
    AdversarialJammer,
    ChurnSchedule,
    CrashSchedule,
    FaultPlan,
    LossyLinkModel,
    simulate_broadcast_faulty,
)
from repro.gossip import simulate_gossip
from repro.rng import spawn_generators


def part1_faults() -> None:
    n = 512
    d = 4 * math.log(n)
    p = d / n
    graph = gnp_connected(n, p, seed=21)
    net = RadioNetwork(graph)
    reps = 8

    print(f"=== Part 1: broadcast under faults (n={n}, 10% crashing nodes) ===")
    print(f"{'reliability':>11} | {'EG rounds':>9} {'EG ok':>6} | {'Decay rounds':>12} {'Decay ok':>8}")
    for rel in (1.0, 0.8, 0.5, 0.3):
        links = LossyLinkModel(graph, rel) if rel < 1.0 else None
        stats = {}
        for proto_idx, (name, factory) in enumerate([
            ("eg", lambda: EGRandomizedProtocol(n, p)),
            ("decay", lambda: DecayProtocol(n)),
        ]):
            times, ok = [], 0
            for rng in spawn_generators(1000 * proto_idx + int(rel * 10), reps):
                crashes = CrashSchedule.random(n, 0.1, 60, seed=rng, protect=[0])
                trace = simulate_broadcast_faulty(
                    net, factory(), crashes=crashes, links=links,
                    seed=rng, p=p, max_rounds=4000, raise_on_incomplete=False,
                )
                if trace.completed:
                    ok += 1
                    times.append(trace.completion_round)
            stats[name] = (np.mean(times) if times else float("inf"), ok / reps)
        print(
            f"{rel:>11.1f} | {stats['eg'][0]:>9.1f} {stats['eg'][1]:>6.0%} | "
            f"{stats['decay'][0]:>12.1f} {stats['decay'][1]:>8.0%}"
        )
    print(
        "Reading: EG keeps winning on speed at moderate loss; its margin "
        "narrows as the channel degrades and Decay's redundancy stops "
        "being wasted.\n"
    )


def part2_adversaries() -> None:
    n = 256
    d = 4 * math.log(n)
    p = d / n
    graph = gnp_connected(n, p, seed=42)
    net = RadioNetwork(graph)
    trials = 8
    scenarios = [
        (
            "jammer k=8 roaming",
            lambda rng: FaultPlan(
                jammer=AdversarialJammer(graph, 8, strategy="random", exclude=[0])
            ),
        ),
        (
            "churn 60% forgetful",
            lambda rng: FaultPlan(
                churn=ChurnSchedule.random(
                    n, 0.6, 120, mean_downtime=40.0, seed=rng, protect=[0]
                )
            ),
        ),
    ]
    protocols = [
        ("eg strict", lambda: EGRandomizedProtocol(n, p, strict_participation=True)),
        ("epoch restart", lambda: EpochRestartProtocol.for_eg(
            n, p, strict_participation=True)),
    ]
    print(f"=== Part 2: adversaries — stock vs epoch-restart (n={n}) ===")
    print(f"{'scenario':>20} | {'protocol':>14} {'ok':>5} {'rounds':>7} {'worst frac':>10}")
    for label, plan_fn in scenarios:
        for pname, factory in protocols:

            def trial(index, rng, plan_fn=plan_fn, factory=factory):
                return simulate_broadcast_faulty(
                    net, factory(), plan=plan_fn(rng), seed=rng, p=p,
                    max_rounds=600, check_connected=False,
                    raise_on_incomplete=False,
                )

            sweep = run_resilient_sweep(trial, trials, seed=3)
            mean = sweep.mean_rounds()
            print(
                f"{label:>20} | {pname:>14} "
                f"{sweep.completion_fraction:>5.0%} "
                f"{mean:>7.1f} {sweep.informed_fractions().min():>10.2f}"
            )
    print(
        "Reading: forgetful churn punches permanent holes in the strict "
        "schedule's coverage (it stalls at a partial informed fraction), "
        "while re-arming the same schedule every epoch re-floods the "
        "holes and completes.\n"
    )


def part3_gossip() -> None:
    print("=== Part 3: gossip — every node starts with its own rumor ===")
    print(f"{'n':>6} {'broadcast':>10} {'gossip':>8} {'accumulate':>11} {'disseminate':>12}")
    for i, n in enumerate((128, 256, 512)):
        d = 4 * math.log(n)
        p = d / n
        graph = gnp_connected(n, p, seed=31 + i)
        net = RadioNetwork(graph)
        q = min(1.0, 1.0 / d)
        gossip = simulate_gossip(net, UniformProtocol(q), seed=i, max_rounds=20000)
        from repro.radio import broadcast_time

        bcast = broadcast_time(net, UniformProtocol(q), 0, seed=i, max_rounds=20000)
        accumulate = gossip.rounds_until_first_complete_node()
        print(
            f"{n:>6} {bcast:>10} {gossip.completion_round:>8} "
            f"{accumulate:>11} {gossip.completion_round - accumulate:>12}"
        )
    print(
        "\nReading: gossip costs a factor ~d over broadcast, and almost "
        "all of it is the accumulate phase — n rumors queuing for one "
        "collision-prone channel. This is the open problem the paper's "
        "conclusions point at, quantified."
    )


if __name__ == "__main__":
    part1_faults()
    part2_adversaries()
    part3_gossip()
