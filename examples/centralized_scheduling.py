"""Scenario: computing an offline broadcast schedule at a base station.

When a controller knows the full topology (paper Section 3.1), it can
precompute who transmits in which round.  This example builds the Theorem 5
schedule, walks through its phases, verifies it against the radio model,
and compares it to the collision-free per-layer baseline to show what the
phase structure buys.

Run:  python examples/centralized_scheduling.py
"""

import math

from repro import (
    ElsasserGasieniecScheduler,
    RadioNetwork,
    gnp_connected,
)
from repro.broadcast.centralized import (
    GreedyCoverScheduler,
    SequentialLayerScheduler,
)
from repro.graphs import layer_decomposition
from repro.radio import execute_schedule, verify_schedule
from repro.theory.bounds import centralized_bound


def main() -> None:
    n, d = 2000, 16.0
    p = d / n
    graph = gnp_connected(n, p, seed=5)
    network = RadioNetwork(graph)
    source = 0

    print(f"network: {graph}")
    ld = layer_decomposition(graph, source)
    print(f"BFS layers from node {source}: sizes {ld.sizes.tolist()}")
    print(f"paper bound ln n/ln d + ln d = {centralized_bound(n, p):.1f}\n")

    # --- The Theorem 5 schedule -------------------------------------
    scheduler = ElsasserGasieniecScheduler(seed=1)
    schedule = scheduler.build(graph, source)
    assert verify_schedule(network, schedule, source)

    print(f"Theorem 5 schedule: {len(schedule)} rounds, "
          f"{schedule.total_transmissions} total transmissions")
    print("phase structure:")
    for phase, rounds in schedule.phase_lengths().items():
        print(f"  {phase:<10} {rounds} round(s)")

    trace = execute_schedule(network, schedule, source, mode="filter")
    print("\nround  phase       transmitters  newly informed")
    for rec in trace.records:
        print(f"{rec.round_index:>5}  {rec.label:<10} {rec.num_transmitters:>12}  {rec.num_new:>14}")

    # --- Baselines ---------------------------------------------------
    greedy = GreedyCoverScheduler(seed=1).build(graph, source)
    sequential = SequentialLayerScheduler().build(graph, source)
    print(f"\ncomparison on the same graph (source {source}):")
    print(f"  {'scheduler':<22} {'rounds':>7} {'transmissions':>14}")
    for name, s in [
        ("Theorem 5 (EG)", schedule),
        ("greedy cover", greedy),
        ("sequential per-layer", sequential),
    ]:
        print(f"  {name:<22} {len(s):>7} {s.total_transmissions:>14}")

    print(
        "\nTakeaway: the sequential baseline is collision-free but pays one "
        "round per cover node (~n/d rounds for the big layer); the Theorem "
        "5 phases pack those transmissions into O(ln d) collision-aware "
        "rounds."
    )


if __name__ == "__main__":
    main()
